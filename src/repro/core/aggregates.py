"""Aggregate functions over the spatial join.

The paper supports distributive aggregates (count, sum, min, max) and
algebraic ones built from them (average) — §5.  Holistic aggregates
(median, ...) are out of scope by design: they cannot be computed from
per-pixel partial aggregates.

An :class:`Aggregate` describes (a) which FBO channels the point pass must
maintain and from which attribute column, (b) how fragments blend into a
channel (addition for count/sum, min/max for the order statistics), and
(c) how final per-polygon values emerge from the reduced channels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import QueryError


class Aggregate(ABC):
    """A distributive or algebraic aggregate function."""

    #: channel name -> attribute column (None means "the constant 1")
    channels: dict[str, str | None]
    #: "add", "min" or "max" — the FBO blend equation
    blend: str = "add"
    name: str = "agg"

    @property
    def columns(self) -> tuple[str, ...]:
        """Attribute columns this aggregate reads (transfer payload)."""
        return tuple(col for col in self.channels.values() if col is not None)

    def identity(self) -> float:
        """Neutral element for the blend equation."""
        if self.blend == "add":
            return 0.0
        return np.inf if self.blend == "min" else -np.inf

    def blend_into(self, accumulator: np.ndarray, ids: np.ndarray,
                   values: np.ndarray | float) -> None:
        """Scatter per-item values into result slots with the blend rule."""
        if self.blend == "add":
            np.add.at(accumulator, ids, values)
        elif self.blend == "min":
            np.minimum.at(accumulator, ids, values)
        else:
            np.maximum.at(accumulator, ids, values)

    def reduce_pixels(self, pixel_values: np.ndarray) -> float:
        """Combine one polygon's covered-pixel channel values.

        A polygon with zero covered pixels reduces to :meth:`identity`,
        so its partial merges as a no-op under :meth:`combine` (adding 0,
        or min/max against ±inf) and never perturbs other tiles' values.
        """
        if len(pixel_values) == 0:
            return self.identity()
        if self.blend == "add":
            return float(np.sum(pixel_values, dtype=np.float64))
        return float(np.min(pixel_values) if self.blend == "min" else np.max(pixel_values))

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge partial results from two batches/tiles.

        Identity slots are absorbing-neutral: a tile that saw no pixels
        for a polygon contributes ``identity()`` and the merge leaves the
        other operand's value bit-unchanged (``x + 0.0 == x`` exactly in
        IEEE float64 except for ``-0.0``, which no reduction here
        produces from a true sum; ``minimum(x, inf)``/``maximum(x,
        -inf)`` return ``x`` exactly).  NaN is deliberately *not*
        neutral — a NaN attribute value poisons min/max merges, matching
        ``np.min``/``np.max`` semantics in :meth:`reduce_pixels`.
        """
        if self.blend == "add":
            return a + b
        return np.minimum(a, b) if self.blend == "min" else np.maximum(a, b)

    @abstractmethod
    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        """Per-polygon final values from the reduced channels."""

    def __repr__(self) -> str:
        cols = ", ".join(self.columns)
        return f"{type(self).__name__}({cols})"


class Count(Aggregate):
    """COUNT(*) — the paper's headline aggregate."""

    name = "count"

    def __init__(self) -> None:
        self.channels = {"count": None}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        return reduced["count"].astype(np.float64)


class Sum(Aggregate):
    """SUM(attribute)."""

    name = "sum"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Sum needs an attribute column")
        self.column = column
        self.channels = {"sum": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        return reduced["sum"].astype(np.float64)


class Average(Aggregate):
    """AVG(attribute) — algebraic: sum channel divided by count channel."""

    name = "avg"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Average needs an attribute column")
        self.column = column
        self.channels = {"sum": column, "count": None}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        counts = reduced["count"].astype(np.float64)
        sums = reduced["sum"].astype(np.float64)
        out = np.full(len(counts), np.nan, dtype=np.float64)
        nonzero = counts > 0
        out[nonzero] = sums[nonzero] / counts[nonzero]
        return out


class Min(Aggregate):
    """MIN(attribute) — distributive with a min blend equation.

    An extension beyond the paper's implementation (its §5 notes the
    approach applies to any distributive aggregate; the authors implement
    count/sum/avg).  Note the *bounded* engine's min/max error is
    two-sided rather than ε-bounded: a boundary pixel attributes every
    point on it to every polygon touching that pixel, so a neighbouring
    point's value can be pulled in (making the reported min too small /
    max too large) *and* a genuinely-inside point near the boundary can
    be credited to an adjacent polygon instead (making the reported min
    too large / max too small when it was the extremum).  The accurate
    engine resolves boundary pixels exactly.

    ``finalize`` maps only *identity* slots — polygons no contributing
    point ever blended into, still holding ``+inf`` — to NaN, the
    SQL-style "MIN of the empty set".  A legitimate ``-inf`` attribute
    value (or a NaN one, which poisons the blend) passes through
    untouched.  The one residual ambiguity is an attribute value exactly
    equal to the identity itself: a polygon whose true minimum is
    ``+inf`` is indistinguishable from an empty one and reports NaN.
    """

    name = "min"
    blend = "min"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Min needs an attribute column")
        self.column = column
        self.channels = {"min": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        out = reduced["min"].astype(np.float64)
        out[out == self.identity()] = np.nan
        return out


class Max(Aggregate):
    """MAX(attribute) — see :class:`Min` (mirror-image semantics:
    untouched ``-inf`` identity slots finalize to NaN; legitimate
    ``+inf`` and NaN values pass through)."""

    name = "max"
    blend = "max"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Max needs an attribute column")
        self.column = column
        self.channels = {"max": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        out = reduced["max"].astype(np.float64)
        out[out == self.identity()] = np.nan
        return out
