"""Zhang-style materializing join — the Table 2 comparator.

The state-of-the-art GPU spatial join the paper compares against (Zhang et
al., "Efficient parallel zonal statistics...") differs from the fused
index join in three ways that this engine reproduces:

1. the *points* are indexed with a quadtree for load balancing and batch
   formation;
2. the join is **materialized**: candidate (point, polygon) pairs from the
   MBR filter are expanded into explicit pair arrays, refined with PIP
   tests into a match list, and only then aggregated — costing memory
   allocations, extra passes, and (on the simulated device) capacity that
   shrinks the usable point batch;
3. point coordinates are truncated to 16-bit fixed point ("to improve
   efficiency, they truncate coordinates to 16-bit integers, thus
   resulting in approximate joins as well").

The paper's Table 2 shows its fused index join beating this design 2–3x;
`bench_table2_gpu_baseline` regenerates that comparison.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.session import QuerySession
from repro.core.aggregates import Aggregate
from repro.core.engine import SpatialAggregationEngine
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet
from repro.index.quadtree import PointQuadtree
from repro.obs import trace
from repro.types import ExecutionStats


class MaterializingJoin(SpatialAggregationEngine):
    """Materialize-then-aggregate GPU join in the style of Zhang et al."""

    name = "materializing-join"

    def __init__(
        self,
        device: GPUDevice | None = None,
        leaf_capacity: int = 65_536,
        truncate_bits: int | None = 16,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        # The default leaf capacity mirrors the comparator's large
        # per-thread-block GPU batches; smaller leaves would give it
        # unrealistically tight MBR filters.
        super().__init__(device, session=session, config=config)
        self.leaf_capacity = leaf_capacity
        self.truncate_bits = truncate_bits
        #: Minimum materialized candidate pairs per batch before the PIP
        #: refinement fans out across the execution backend; below it the
        #: dispatch overhead outweighs the parallel PIP work.  The
        #: threshold depends only on the data, never on the backend, so
        #: the refinement path (and its bit pattern) is deterministic.
        self.parallel_refine_threshold = 100_000

    def prepared_spec(self) -> tuple:
        """The render-spec part of this engine's artifact cache key."""
        return ("mbr-arrays",)

    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        accumulators = self._new_accumulators(polygons, aggregate)
        columns = self.required_columns(aggregate, filters)
        # The materializing join renders no tiles; it still reports the
        # execution environment uniformly across engines.
        self._record_execution_env(stats, 1)
        # Polygon-side preparation: columnar MBRs, reused via the session.
        prepared = self._prepared_state(polygons, self.prepared_spec(), stats)
        poly_xmin, poly_xmax, poly_ymin, poly_ymax = (
            prepared.ensure_mbr_arrays(polygons)
        )

        for batch in self._batches(points, columns, stats):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            if len(xs) == 0:
                stats.processing_s += time.perf_counter() - start
                continue
            xs, ys = self._truncate(xs, ys, polygons)
            # Point quadtree: the comparator's load-balancing structure.
            with trace.span("index-build"):
                qtree = PointQuadtree(
                    xs, ys, leaf_capacity=self.leaf_capacity
                )
            stats.index_build_s += qtree.build_seconds

            # Filter step: leaf MBR x polygon MBR -> materialized pairs.
            pair_points: list[np.ndarray] = []
            pair_polys: list[np.ndarray] = []
            with trace.span("materialize"):
                for leaf in qtree.leaves():
                    box = leaf.bbox
                    hits = np.flatnonzero(
                        (poly_xmin <= box.xmax) & (poly_xmax >= box.xmin)
                        & (poly_ymin <= box.ymax) & (poly_ymax >= box.ymin)
                    )
                    if len(hits) == 0:
                        continue
                    ids = qtree.leaf_point_ids(leaf)
                    # Materialization: the full candidate cross product is
                    # written out as explicit pair arrays (the memory cost
                    # the paper's Insight 1 avoids).
                    pair_points.append(np.repeat(ids, len(hits)))
                    pair_polys.append(np.tile(hits, len(ids)))
            if not pair_points:
                stats.processing_s += time.perf_counter() - start
                continue
            cand_pt = np.concatenate(pair_points)
            cand_poly = np.concatenate(pair_polys)
            stats.extra["materialized_pairs"] = (
                stats.extra.get("materialized_pairs", 0) + len(cand_pt)
            )

            # Tighten with per-point MBR tests, still materialized.
            keep = (
                (xs[cand_pt] >= poly_xmin[cand_poly])
                & (xs[cand_pt] <= poly_xmax[cand_poly])
                & (ys[cand_pt] >= poly_ymin[cand_poly])
                & (ys[cand_pt] <= poly_ymax[cand_poly])
            )
            cand_pt = cand_pt[keep]
            cand_poly = cand_poly[keep]

            # Refinement: PIP per candidate pair, producing the match list.
            # Polygon groups are independent, so they fan out over the
            # engine's (persistent) execution backend when the
            # materialized pair count is worth the dispatch; partials
            # merge in slice order, so the match list — and therefore
            # the aggregation — is bit-identical to inline refinement.
            match_pt: list[np.ndarray] = []
            match_poly: list[np.ndarray] = []
            order = np.argsort(cand_poly, kind="stable")
            cand_pt = cand_pt[order]
            cand_poly = cand_poly[order]
            group_bounds = np.flatnonzero(np.diff(cand_poly)) + 1
            starts = np.concatenate([[0], group_bounds])
            ends = np.concatenate([group_bounds, [len(cand_poly)]])
            groups = list(zip(starts, ends))

            def refine(lo: int, hi: int):
                pt_out: list[np.ndarray] = []
                poly_out: list[np.ndarray] = []
                tests = 0
                for s, e in groups[lo:hi]:
                    pid = int(cand_poly[s])
                    ids = cand_pt[s:e]
                    inside = polygons[pid].contains_points(xs[ids], ys[ids])
                    tests += len(ids)
                    if inside.any():
                        pt_out.append(ids[inside])
                        poly_out.append(
                            np.full(int(inside.sum()), pid, dtype=np.int64)
                        )
                return pt_out, poly_out, tests

            workers = self.backend.workers
            with trace.span("pip-refine", concurrent=workers > 1,
                            pairs=int(len(cand_poly))):
                if (
                    workers > 1
                    and len(groups) > 1
                    and len(cand_poly) >= self.parallel_refine_threshold
                ):
                    step = -(-len(groups) // workers)
                    slices = [
                        (lo, min(lo + step, len(groups)))
                        for lo in range(0, len(groups), step)
                    ]
                    partials = self.backend.run_tasks(
                        [
                            (lambda lo=lo, hi=hi: refine(lo, hi))
                            for lo, hi in slices
                        ]
                    )
                    stats.extra["pool"] = self.backend.last_pool_event
                else:
                    partials = [refine(0, len(groups))]
            for pt_out, poly_out, tests in partials:
                match_pt.extend(pt_out)
                match_poly.extend(poly_out)
                stats.pip_tests += tests
            if match_pt:
                joined_pt = np.concatenate(match_pt)
                joined_poly = np.concatenate(match_poly)
                stats.extra["join_size"] = (
                    stats.extra.get("join_size", 0) + len(joined_pt)
                )
                # Separate aggregation pass over the materialized join.
                for ch, col in aggregate.channels.items():
                    values = (
                        attrs[col][joined_pt] if col is not None else 1.0
                    )
                    aggregate.blend_into(accumulators[ch], joined_poly, values)
            stats.processing_s += time.perf_counter() - start
        return aggregate.finalize(accumulators), accumulators

    # ------------------------------------------------------------------
    def _truncate(
        self, xs: np.ndarray, ys: np.ndarray, polygons: PolygonSet
    ) -> tuple[np.ndarray, np.ndarray]:
        """Snap coordinates to a 2^bits fixed-point lattice over the extent.

        Reproduces the comparator's 16-bit coordinate compression, the
        source of its approximation error.
        """
        if self.truncate_bits is None:
            return xs, ys
        levels = float((1 << self.truncate_bits) - 1)
        box = polygons.bbox
        fx = np.clip((xs - box.xmin) / max(box.width, 1e-300), 0.0, 1.0)
        fy = np.clip((ys - box.ymin) / max(box.height, 1e-300), 0.0, 1.0)
        qx = np.rint(fx * levels) / levels
        qy = np.rint(fy * levels) / levels
        return box.xmin + qx * box.width, box.ymin + qy * box.height
