"""Result-range estimation for the bounded raster join (§5).

Every error of the bounded join lives in a boundary pixel: a covered pixel
crossed by the outline may count outside points (false positives), an
uncovered pixel overlapping the polygon may miss inside points (false
negatives).  Summing the point-FBO totals of those two pixel sets yields a
100%-confidence interval around the approximate answer.  Assuming points
are uniformly distributed inside each (tiny) boundary pixel, scaling each
pixel's total by its pixel∩polygon area fraction gives a much tighter
expected interval.

Note on the paper's formulas: §5 prints both ε⁺ and ε⁻ with the factor
``f`` (the fraction of the pixel *inside* the polygon).  For a false-
positive pixel the whole total was counted but only ``f`` of it is expected
to belong, so the expected over-count is ``(1 - f) * F`` — we implement
that statistically consistent form and keep the paper's loose bounds
unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregates import Aggregate
from repro.geometry.bbox import BBox
from repro.geometry.clip import clip_polygon_to_rect, ring_area
from repro.geometry.polygon import PolygonSet
from repro.graphics.conservative import conservative_triangle_pixels
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_line import outline_pixels
from repro.graphics.raster_triangle import triangle_coverage_mask
from repro.graphics.viewport import Viewport
from repro.types import ResultIntervals


def _polygon_pixel_sets(
    tile: Viewport,
    triangles: Sequence[np.ndarray],
    rings: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Boundary-pixel classification for one polygon on one tile.

    Returns ``(fp_ix, fp_iy, fn_ix, fn_iy)``: the false-positive candidate
    pixels (covered by regular rasterization and crossed by the outline)
    and the false-negative candidates (crossed or overlapped but not
    covered).
    """
    out_ix, out_iy = outline_pixels(tile, rings)
    if len(out_ix) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, empty

    covered = np.zeros((tile.height, tile.width), dtype=bool)
    overlapped = np.zeros((tile.height, tile.width), dtype=bool)
    for tri in triangles:
        x0, y0, mask = triangle_coverage_mask(tile, tri)
        if mask.size:
            covered[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]] |= mask
        x0, y0, cmask = conservative_triangle_pixels(tile, tri)
        if cmask.size:
            overlapped[y0:y0 + cmask.shape[0], x0:x0 + cmask.shape[1]] |= cmask

    on_cover = covered[out_iy, out_ix]
    fp_ix, fp_iy = out_ix[on_cover], out_iy[on_cover]
    miss = ~on_cover & overlapped[out_iy, out_ix]
    fn_ix, fn_iy = out_ix[miss], out_iy[miss]
    return fp_ix, fp_iy, fn_ix, fn_iy


def _coverage_fractions(
    tile: Viewport,
    triangles: Sequence[np.ndarray],
    ixs: np.ndarray,
    iys: np.ndarray,
) -> np.ndarray:
    """Pixel∩polygon area fraction for each listed pixel.

    Clips each triangle of the partition against the pixel rectangle
    (Sutherland–Hodgman standing in for the paper's Cohen–Sutherland based
    computation) and accumulates areas; triangles are pre-filtered by
    bounding box per pixel.
    """
    if len(ixs) == 0:
        return np.zeros(0, dtype=np.float64)
    tri_boxes = [
        (float(t[:, 0].min()), float(t[:, 0].max()),
         float(t[:, 1].min()), float(t[:, 1].max()))
        for t in triangles
    ]
    fractions = np.zeros(len(ixs), dtype=np.float64)
    for k, (ix, iy) in enumerate(zip(ixs, iys)):
        rect = tile.pixel_bbox(int(ix), int(iy))
        covered = 0.0
        for tri, (txmin, txmax, tymin, tymax) in zip(triangles, tri_boxes):
            if txmax < rect.xmin or txmin > rect.xmax:
                continue
            if tymax < rect.ymin or tymin > rect.ymax:
                continue
            clipped = clip_polygon_to_rect(tri, rect)
            if len(clipped) >= 3:
                covered += abs(ring_area(clipped))
        fractions[k] = min(1.0, covered / rect.area)
    return fractions


def estimate_result_intervals(
    tiles_and_fbos: Sequence[tuple[Viewport, FrameBuffer]],
    polygons: PolygonSet,
    triangles: Sequence[Sequence[np.ndarray]],
    values: np.ndarray,
    aggregate: Aggregate,
) -> ResultIntervals:
    """Per-polygon result intervals from boundary-pixel analysis.

    Supports additive aggregates (count/sum); for algebraic averages the
    bounds are computed on the count channel and scaled — callers that
    need avg bounds should request them on sum and count separately.
    """
    n = len(polygons)
    over_loose = np.zeros(n, dtype=np.float64)   # Σ_{P+} F
    under_loose = np.zeros(n, dtype=np.float64)  # Σ_{P-} F
    over_expected = np.zeros(n, dtype=np.float64)   # Σ_{P+} (1-f) F
    under_expected = np.zeros(n, dtype=np.float64)  # Σ_{P-} f F

    channel = "count" if "count" in aggregate.channels else next(iter(aggregate.channels))
    for tile, fbo in tiles_and_fbos:
        grid = fbo.channel(channel)
        for pid, polygon in enumerate(polygons):
            if not polygon.bbox.intersects(tile.bbox):
                continue
            fp_ix, fp_iy, fn_ix, fn_iy = _polygon_pixel_sets(
                tile, triangles[pid], polygon.rings
            )
            if len(fp_ix):
                totals = grid[fp_iy, fp_ix].astype(np.float64)
                over_loose[pid] += float(totals.sum())
                f = _coverage_fractions(tile, triangles[pid], fp_ix, fp_iy)
                over_expected[pid] += float(((1.0 - f) * totals).sum())
            if len(fn_ix):
                totals = grid[fn_iy, fn_ix].astype(np.float64)
                under_loose[pid] += float(totals.sum())
                f = _coverage_fractions(tile, triangles[pid], fn_ix, fn_iy)
                under_expected[pid] += float((f * totals).sum())

    values = np.asarray(values, dtype=np.float64)
    return ResultIntervals(
        loose_lo=values - over_loose,
        loose_hi=values + under_loose,
        expected_lo=values - over_expected,
        expected_hi=values + under_expected,
        expected_value=values - over_expected + under_expected,
    )
