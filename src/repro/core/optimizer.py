"""Cost-based choice between the bounded and accurate variants.

Figure 12(a) shows the trade-off that motivates this: as ε shrinks, the
bounded join needs quadratically more rendering passes and eventually loses
to the accurate join.  §8 states the authors "intend to add an estimate of
the time required for the two variants, so that an optimizer can choose the
best option" — this module implements that future-work optimizer.

The model is calibrated, not guessed: on first use (or on demand) it runs
two tiny probe queries and fits per-unit costs — seconds per rendered
point, per polygon-pass pixel, and per PIP test — then predicts each
variant's time for the actual query from measurable quantities (input size,
canvas pixels, tile count, expected boundary traffic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.session import QuerySession
from repro.core.accurate import AccurateRasterJoin
from repro.core.bounded import BoundedRasterJoin
from repro.core.engine import SpatialAggregationEngine
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet, rectangle
from repro.graphics.viewport import Canvas


@dataclass
class CostModel:
    """Fitted per-unit costs (seconds).

    ``per_vertex_triangulate`` and ``per_vertex_grid`` price the
    polygon-side preparation (triangulation; grid-index build) that a
    cold run pays and a warm run skips.  The ``warm`` argument of the
    predictors grades what the session actually holds for the variant:

    * ``"full"`` (or ``True``) — the artifact carries coverage, so both
      the preparation term and the polygon-pass term are dropped (the
      warm polygon pass replays stored coverage indices, whose gather
      cost is noise next to rasterizing the triangles);
    * ``"partial"`` — triangulation/grid are reusable but coverage must
      re-rasterize, so only the preparation term is dropped;
    * ``False``/``None`` — cold: every term is paid.

    Warmth is **fractional**: a :class:`~repro.cache.session.Warmth`
    grade carries the share of the query's polygons whose prepared
    state is already reusable (1.0 for an exact artifact hit, the
    matched share for a delta-derivable edited set), and the discounted
    terms scale by the share that actually rebuilds — so a 1-of-200
    edit is costed like a warm query, not a cold one.  Plain strings
    and booleans keep meaning fraction 1.0.
    """

    per_point_render: float
    per_pixel_polygon_pass: float
    per_pip_test: float
    per_boundary_point: float
    per_vertex_triangulate: float = 0.0
    per_vertex_grid: float = 0.0

    @staticmethod
    def _grades(warm) -> tuple[float, float]:
        """(preparation-reusable, coverage-replayable) warm fractions."""
        full = warm is True or warm == "full"
        partial = warm == "partial"
        if not (full or partial):
            return 0.0, 0.0
        fraction = float(getattr(warm, "fraction", 1.0))
        return fraction, fraction if full else 0.0

    def _point_pass_seconds(
        self, num_points: int, tiles: int, waves: int, partitioned: bool
    ) -> float:
        """Point-pass cost for one query.

        Full scan: every tile projects all ``num_points``, so each wave
        costs the full point count.  Partitioned: the parent pays one
        global projection up front and each tile then scans only its
        share (``num_points / tiles``), so the term scales by the
        per-tile point share instead of the total — the difference
        between "parallel" and "scales with cores" on multi-tile
        canvases.
        """
        if not partitioned or tiles <= 1:
            return self.per_point_render * num_points * waves
        return self.per_point_render * num_points * (1.0 + waves / tiles)

    def bounded_terms(
        self, num_points: int, canvas_pixels: int, tiles: int,
        covered_pixels: int, workers: int = 1, num_vertices: int = 0,
        warm: "str | bool | None" = False, partitioned: bool = False,
    ) -> dict[str, float]:
        """Per-term predicted bounded-join seconds.

        Keys name the trace spans the terms correspond to (EXPLAIN
        ANALYZE lines predictions up against measured span times):
        ``point_pass`` (the per-tile point render), ``prepare``
        (triangulation, discounted by warmth), and ``polygon_pass``
        (coverage rasterization, dropped when coverage replays).

        Tiles are independent, so with ``workers`` parallel tile workers
        the point pass runs in ``ceil(tiles / workers)`` waves and the
        polygon pass spreads over the tiles actually running concurrently.
        With ``partitioned`` point execution each wave scans only the
        per-tile point share (see :meth:`_point_pass_seconds`).
        """
        tiles = max(1, tiles)
        concurrency = max(1, min(workers, tiles))
        waves = math.ceil(tiles / concurrency)
        prepared, replayable = self._grades(warm)
        return {
            "point_pass": self._point_pass_seconds(
                num_points, tiles, waves, partitioned
            ),
            "prepare": (
                self.per_vertex_triangulate * num_vertices * (1.0 - prepared)
            ),
            "polygon_pass": (
                self.per_pixel_polygon_pass * covered_pixels / concurrency
                * (1.0 - replayable)
            ),
        }

    def bounded_seconds(
        self, num_points: int, canvas_pixels: int, tiles: int,
        covered_pixels: int, workers: int = 1, num_vertices: int = 0,
        warm: "str | bool | None" = False, partitioned: bool = False,
    ) -> float:
        """Predicted bounded-join time (the :meth:`bounded_terms` sum)."""
        return sum(self.bounded_terms(
            num_points, canvas_pixels, tiles, covered_pixels,
            workers=workers, num_vertices=num_vertices, warm=warm,
            partitioned=partitioned,
        ).values())

    def accurate_terms(
        self, num_points: int, boundary_fraction: float, covered_pixels: int,
        tiles: int = 1, workers: int = 1, num_vertices: int = 0,
        warm: "str | bool | None" = False, partitioned: bool = False,
        pyramid_warm: bool = False, pyramid_cells: int = 0,
    ) -> dict[str, float]:
        """Per-term predicted accurate-join seconds.

        The render and polygon pass parallelize across tiles like the
        bounded variant; the boundary PIP path is partitioned with the
        points, so it divides across concurrent tile workers too.  The
        boundary PIP traffic is per-query point work and is paid warm or
        cold.  With ``partitioned`` point execution the render term
        scales by the per-tile point share (see
        :meth:`_point_pass_seconds`).

        ``pyramid_warm`` is the third regime: a resident aggregate
        pyramid (``repro.cache.pyramid``) answers polygon interiors from
        cached block partials, so the whole-input point pass and the
        pixel polygon pass disappear — what remains is the boundary-cell
        PIP fallback (``boundary_fraction`` should then be the *grid
        cell* supercover share, not the canvas pixel share) plus the
        block folds, priced per block entry by the polygon-pass pixel
        rate (both are gather-and-reduce of cached partials).  The
        preparation term stays: a cold artifact still triangulates and
        builds its grid before the pyramid can route around the points.
        """
        tiles = max(1, tiles)
        concurrency = max(1, min(workers, tiles))
        waves = math.ceil(tiles / concurrency)
        boundary_points = num_points * boundary_fraction
        prepared, replayable = self._grades(warm)
        prepare = (
            (self.per_vertex_triangulate + self.per_vertex_grid)
            * num_vertices * (1.0 - prepared)
        )
        if pyramid_warm:
            return {
                "prepare": prepare,
                "pyramid_blocks": (
                    self.per_pixel_polygon_pass * pyramid_cells / concurrency
                ),
                "boundary_pip": (
                    self.per_boundary_point * boundary_points / concurrency
                ),
            }
        return {
            "prepare": prepare,
            "point_pass": self._point_pass_seconds(
                num_points, tiles, waves, partitioned
            ),
            "boundary_pip": (
                self.per_boundary_point * boundary_points / concurrency
            ),
            "polygon_pass": (
                self.per_pixel_polygon_pass * covered_pixels / concurrency
                * (1.0 - replayable)
            ),
        }

    def accurate_seconds(
        self, num_points: int, boundary_fraction: float, covered_pixels: int,
        tiles: int = 1, workers: int = 1, num_vertices: int = 0,
        warm: "str | bool | None" = False, partitioned: bool = False,
        pyramid_warm: bool = False, pyramid_cells: int = 0,
    ) -> float:
        """Predicted accurate-join time (the :meth:`accurate_terms` sum)."""
        return sum(self.accurate_terms(
            num_points, boundary_fraction, covered_pixels, tiles=tiles,
            workers=workers, num_vertices=num_vertices, warm=warm,
            partitioned=partitioned, pyramid_warm=pyramid_warm,
            pyramid_cells=pyramid_cells,
        ).values())


def _calibrate(device: GPUDevice | None, probe_points: int = 20_000) -> CostModel:
    """Fit the cost model from two micro-probes on synthetic data."""
    rng = np.random.default_rng(7)
    xs = rng.uniform(0.0, 100.0, probe_points)
    ys = rng.uniform(0.0, 100.0, probe_points)
    points = PointDataset(xs, ys)
    polys = PolygonSet(
        [
            rectangle(5 + 30 * i, 5 + 30 * j, 25 + 30 * i, 25 + 30 * j)
            for i in range(3)
            for j in range(3)
        ]
    )
    bounded = BoundedRasterJoin(resolution=512, device=device)
    res_b = bounded.execute(points, polys)
    accurate = AccurateRasterJoin(resolution=512, device=device)
    res_a = accurate.execute(points, polys)

    canvas_pixels = 512 * 512
    covered = canvas_pixels * 0.36  # 9 boxes of 20x20 over 100x100
    # Split bounded processing into point render vs. polygon pass using
    # the measured ``polygon_pass_s`` share; the 50/50 guess remains only
    # as a fallback for degenerate timings (e.g. a mocked clock).
    polygon_s = res_b.stats.polygon_pass_s
    if not (0.0 < polygon_s < res_b.stats.processing_s):
        polygon_s = res_b.stats.processing_s * 0.5
    point_s = res_b.stats.processing_s - polygon_s
    per_point = max(point_s / probe_points, 1e-12)
    per_pixel = max(polygon_s / covered, 1e-12)
    boundary_pts = max(res_a.stats.boundary_points, 1)
    pip_tests = max(res_a.stats.pip_tests, 1)
    pip_time = max(res_a.stats.processing_s - res_b.stats.processing_s, 1e-9)
    probe_vertices = sum(p.num_vertices for p in polys)
    return CostModel(
        per_point_render=per_point,
        per_pixel_polygon_pass=per_pixel,
        per_pip_test=pip_time / pip_tests,
        per_boundary_point=pip_time / boundary_pts,
        per_vertex_triangulate=max(
            res_b.stats.triangulation_s / probe_vertices, 0.0
        ),
        per_vertex_grid=max(res_a.stats.index_build_s / probe_vertices, 0.0),
    )


class RasterJoinOptimizer:
    """Chooses bounded vs. accurate for a requested ε."""

    def __init__(
        self,
        device: GPUDevice | None = None,
        accurate_resolution: int = 1024,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.device = device
        self.accurate_resolution = accurate_resolution
        #: Execution configuration, forwarded to constructed engines and
        #: folded into the cost predictions (parallel tile workers shrink
        #: the multi-tile terms of both variants).  The backend is
        #: resolved once and pinned into the config as an instance, so
        #: every engine this optimizer constructs shares one backend —
        #: and therefore one persistent worker pool — across choices.
        config = config if config is not None else EngineConfig()
        self.config = config.with_pinned_backend()
        if session is None:
            # Mirror the engines: an explicit store location on the
            # config yields an optimizer-owned session (via the shared
            # EngineConfig.default_session gate), so routing decisions
            # keep a live memory tier instead of every choose() paying
            # a disk load through a throwaway per-engine session.
            session = self.config.default_session()
        #: Forwarded to every engine this optimizer constructs, so a
        #: rezoning loop that keeps asking for the same polygon set reuses
        #: its prepared state regardless of which variant wins.
        self.session = session
        self._workers = self.config.backend.workers
        self._partitioned = self.config.partition_enabled()
        self._model: CostModel | None = None

    def close(self) -> None:
        """Release the shared backend's worker pool (respawns lazily)."""
        self.config.backend.close()

    @property
    def model(self) -> CostModel:
        if self._model is None:
            self._model = _calibrate(self.device)
        return self._model

    # ------------------------------------------------------------------
    def _candidates(
        self, epsilon: float
    ) -> tuple[BoundedRasterJoin, AccurateRasterJoin]:
        """The two engines this optimizer chooses between."""
        return (
            BoundedRasterJoin(
                epsilon=epsilon, device=self.device, session=self.session,
                config=self.config,
            ),
            AccurateRasterJoin(
                resolution=self.accurate_resolution, device=self.device,
                session=self.session, config=self.config,
            ),
        )

    def _warmth(self, engine, polygons: PolygonSet) -> "str | None":
        """The warmth grade of the engine's artifact, or ``None`` (cold).

        The grade is a :class:`~repro.cache.session.Warmth` carrying the
        warm *fraction*: 1.0 for an exact artifact, the matched-polygon
        share when the session could delta-derive from a sibling — the
        costing then discounts only the share that is actually reusable,
        so a single-polygon edit of a warm set plans warm.

        Probes the *candidate engine's* session — the shared optimizer
        session when one was given (or derived from an explicit
        ``EngineConfig.store_dir``); a session-less optimizer costs
        everything cold, matching the cache-free execution its engines
        will actually run.  The grade comes from what is actually
        stored (manifest fields, not bare file existence), so a partial
        artifact is only credited the preparation it really skips; the
        probe never touches LRU order, counters, or mtimes — costing a
        query must never change cache state.
        """
        if engine.session is None:
            return None
        return engine.session.warmth(polygons, engine.prepared_spec())

    def estimate(
        self,
        points: PointDataset,
        polygons: PolygonSet,
        epsilon: float,
    ) -> dict[str, float]:
        """Predicted seconds for each variant at the given ε.

        Cache-aware: when the session (memory or artifact store) already
        holds a variant's prepared artifact, that variant's preparation
        and polygon-pass terms are dropped — which is how a warm accurate
        engine can beat a cold bounded one.  The returned dict also
        reports each variant's warmth under ``"bounded_warm"`` /
        ``"accurate_warm"``.
        """
        return self._estimate(points, polygons, epsilon,
                              *self._candidates(epsilon))

    def _estimate(
        self,
        points: PointDataset,
        polygons: PolygonSet,
        epsilon: float,
        bounded_engine: BoundedRasterJoin,
        accurate_engine: AccurateRasterJoin,
    ) -> dict[str, float]:
        """:meth:`estimate` over an already-constructed candidate pair."""
        warm_bounded = self._warmth(bounded_engine, polygons)
        warm_accurate = self._warmth(accurate_engine, polygons)
        num_vertices = sum(p.num_vertices for p in polygons)
        canvas = Canvas.for_epsilon(polygons.bbox, epsilon)
        max_res = (
            self.device.max_resolution if self.device is not None else 8192
        )
        tiles = canvas.num_tiles(max_res)
        # Covered pixels scale with total polygon area over the extent.
        area_fraction = min(
            1.0,
            sum(p.area for p in polygons) / max(polygons.bbox.area, 1e-300),
        )
        covered = canvas.num_pixels * area_fraction
        # Boundary traffic: outline length in pixels over the *accurate*
        # canvas, times the point density per pixel row.
        perimeter = sum(
            math.hypot(bx - ax, by - ay)
            for poly in polygons
            for (ax, ay, bx, by) in poly.edges()
        )
        acc_canvas = Canvas.for_resolution(
            polygons.bbox, self.accurate_resolution
        )
        boundary_pixels = perimeter / max(
            min(acc_canvas.pixel_width, acc_canvas.pixel_height), 1e-300
        )
        boundary_fraction = min(
            1.0, boundary_pixels / max(acc_canvas.num_pixels, 1)
        )
        model = self.model
        acc_tiles = acc_canvas.num_tiles(max_res)
        # The engines this optimizer constructs inherit its config, so
        # the prediction must assume the same point-pass execution they
        # will actually run: partitioned tiles scan only their share.
        partitioned = self._partitioned
        acc_workers = self._effective_workers(points, acc_canvas, max_res, 8)
        # Third regime: a resident aggregate pyramid reads only the
        # points of boundary *grid cells* plus O(blocks) cached partials.
        pyramid_warm = accurate_engine.pyramid_warmth(points, polygons)
        grid_res = max(1, accurate_engine.grid_resolution)
        grid_canvas = Canvas.for_resolution(polygons.bbox, grid_res)
        boundary_cells = perimeter / max(
            min(grid_canvas.pixel_width, grid_canvas.pixel_height), 1e-300
        )
        cell_fraction = min(1.0, boundary_cells / max(grid_res * grid_res, 1))
        # Block decomposition folds O(boundary cells) entries per level.
        pyramid_cells = int(
            boundary_cells * max(1.0, math.log2(max(grid_res, 2)))
        )
        return {
            "bounded": model.bounded_seconds(
                len(points), canvas.num_pixels, tiles, int(covered),
                workers=self._effective_workers(points, canvas, max_res, 4),
                num_vertices=num_vertices, warm=warm_bounded,
                partitioned=partitioned,
            ),
            "accurate": model.accurate_seconds(
                len(points), boundary_fraction,
                int(acc_canvas.num_pixels * area_fraction),
                tiles=acc_tiles,
                workers=acc_workers,
                num_vertices=num_vertices, warm=warm_accurate,
                partitioned=partitioned,
            ),
            "accurate_pyramid": model.accurate_seconds(
                len(points), cell_fraction,
                int(acc_canvas.num_pixels * area_fraction),
                tiles=acc_tiles,
                workers=acc_workers,
                num_vertices=num_vertices, warm=warm_accurate,
                partitioned=partitioned,
                pyramid_warm=True, pyramid_cells=pyramid_cells,
            ),
            "bounded_warm": warm_bounded or False,
            "accurate_warm": warm_accurate or False,
            "accurate_pyramid_warm": bool(pyramid_warm),
        }

    def explain_terms(
        self,
        points: PointDataset,
        polygons: PolygonSet,
        engine: SpatialAggregationEngine,
    ) -> tuple[str, dict[str, float]]:
        """(regime, per-term predicted seconds) for the given engine.

        The regime names which cost path the prediction took —
        ``"cold"``, ``"warm"`` (prepared artifact reusable), or
        ``"pyramid-warm"`` (resident aggregate pyramid answers polygon
        interiors) — and the term keys name the trace spans the engine
        will emit (``prepare``, ``point_pass``, ``polygon_pass``,
        ``boundary_pip``, ``pyramid_blocks``), so EXPLAIN ANALYZE can
        line each prediction up against the measured span time.

        Supports the two raster-join variants the SQL planner chooses
        between; the feature extraction mirrors :meth:`estimate`.
        """
        num_vertices = sum(p.num_vertices for p in polygons)
        area_fraction = min(
            1.0,
            sum(p.area for p in polygons) / max(polygons.bbox.area, 1e-300),
        )
        perimeter = sum(
            math.hypot(bx - ax, by - ay)
            for poly in polygons
            for (ax, ay, bx, by) in poly.edges()
        )
        max_res = (
            self.device.max_resolution if self.device is not None else 8192
        )
        model = self.model
        partitioned = self._partitioned
        warm = self._warmth(engine, polygons)
        if isinstance(engine, BoundedRasterJoin):
            canvas = Canvas.for_epsilon(polygons.bbox, engine.epsilon)
            regime = "warm" if warm else "cold"
            return regime, model.bounded_terms(
                len(points), canvas.num_pixels, canvas.num_tiles(max_res),
                int(canvas.num_pixels * area_fraction),
                workers=self._effective_workers(points, canvas, max_res, 4),
                num_vertices=num_vertices, warm=warm,
                partitioned=partitioned,
            )
        resolution = getattr(engine, "resolution", self.accurate_resolution)
        acc_canvas = Canvas.for_resolution(polygons.bbox, resolution)
        boundary_pixels = perimeter / max(
            min(acc_canvas.pixel_width, acc_canvas.pixel_height), 1e-300
        )
        boundary_fraction = min(
            1.0, boundary_pixels / max(acc_canvas.num_pixels, 1)
        )
        acc_workers = self._effective_workers(points, acc_canvas, max_res, 8)
        pyramid_warm = bool(getattr(engine, "pyramid_warmth", lambda *a: False)(
            points, polygons
        ))
        if pyramid_warm:
            grid_res = max(1, getattr(engine, "grid_resolution", resolution))
            grid_canvas = Canvas.for_resolution(polygons.bbox, grid_res)
            boundary_cells = perimeter / max(
                min(grid_canvas.pixel_width, grid_canvas.pixel_height),
                1e-300,
            )
            cell_fraction = min(
                1.0, boundary_cells / max(grid_res * grid_res, 1)
            )
            pyramid_cells = int(
                boundary_cells * max(1.0, math.log2(max(grid_res, 2)))
            )
            return "pyramid-warm", model.accurate_terms(
                len(points), cell_fraction,
                int(acc_canvas.num_pixels * area_fraction),
                tiles=acc_canvas.num_tiles(max_res), workers=acc_workers,
                num_vertices=num_vertices, warm=warm,
                partitioned=partitioned,
                pyramid_warm=True, pyramid_cells=pyramid_cells,
            )
        regime = "warm" if warm else "cold"
        return regime, model.accurate_terms(
            len(points), boundary_fraction,
            int(acc_canvas.num_pixels * area_fraction),
            tiles=acc_canvas.num_tiles(max_res), workers=acc_workers,
            num_vertices=num_vertices, warm=warm, partitioned=partitioned,
        )

    def _effective_workers(
        self, points: PointDataset, canvas: Canvas, max_res: int,
        channel_bytes: int,
    ) -> int:
        """Configured workers, clamped by the device-memory concurrency cap.

        The engines never let more tiles hold a planned batch than the
        device budget allows (``tile_parallelism``); predicting with the
        raw worker count would undercost memory-starved queries, so the
        same clamp is applied here using the variant's FBO footprint.
        """
        if self.device is None:
            return self._workers
        from repro.device.batching import plan_batches, tile_parallelism
        from repro.errors import DeviceError

        fbo_bytes = min(canvas.num_pixels, max_res ** 2) * channel_bytes
        try:
            plan = plan_batches(points, ("x", "y"), self.device, fbo_bytes)
        except DeviceError:
            return 1
        return tile_parallelism(self.device, fbo_bytes, plan, self._workers)

    def choose(
        self,
        points: PointDataset,
        polygons: PolygonSet,
        epsilon: float,
    ) -> SpatialAggregationEngine:
        """The engine predicted to be faster for this query.

        Predictions are cache-aware (see :meth:`estimate`): a variant
        whose prepared artifact is already in the session — in memory or
        in the artifact store — competes without its preparation and
        polygon-pass cost, so a warm accurate engine routinely wins over
        a cold bounded one in an interactive loop.
        """
        bounded_engine, accurate_engine = self._candidates(epsilon)
        cost = self._estimate(points, polygons, epsilon,
                              bounded_engine, accurate_engine)
        # With a resident pyramid the accurate engine will actually take
        # the pyramid-warm path, so that's the prediction it competes on.
        accurate_cost = (
            cost["accurate_pyramid"] if cost["accurate_pyramid_warm"]
            else cost["accurate"]
        )
        if cost["bounded"] <= accurate_cost:
            return bounded_engine
        return accurate_engine
