"""Attribute filter constraints (the query's ``filterCondition`` clauses).

Filters are evaluated in the vertex stage, before any rasterization or PIP
work, exactly as the paper does: "the vertex shader discards the points
that do not satisfy the constraint" (§5).  Because attributes travel to the
device inside the vertex payload, each *distinct filtered column* increases
the per-point transfer size — the effect Figure 11 measures — and the
implementation mirrors the paper's fixed-vertex-size restriction by
allowing at most :data:`MAX_CONSTRAINT_COLUMNS` distinct columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import FilterError

#: The paper's implementation supports conjunctions over at most five
#: attributes because vertex size is fixed at shader-compile time (§6.1).
MAX_CONSTRAINT_COLUMNS = 5

_OPERATORS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    ">": np.greater,
    ">=": np.greater_equal,
    "<": np.less,
    "<=": np.less_equal,
    "=": np.equal,
    "==": np.equal,
    "!=": np.not_equal,
}


@dataclass(frozen=True)
class Filter:
    """One comparison constraint: ``column op value``."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise FilterError(
                f"unsupported operator {self.op!r}; "
                f"supported: {sorted(_OPERATORS)}"
            )
        if not self.column:
            raise FilterError("filter column must be non-empty")

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorized predicate over a column array."""
        return _OPERATORS[self.op](values, self.value)

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value}"


class FilterSet:
    """A conjunction of filters, applied as one vertex-stage mask."""

    def __init__(self, filters: Iterable[Filter] = ()) -> None:
        self.filters: tuple[Filter, ...] = tuple(filters)
        columns = sorted({f.column for f in self.filters})
        if len(columns) > MAX_CONSTRAINT_COLUMNS:
            raise FilterError(
                f"constraints touch {len(columns)} columns; the vertex "
                f"payload supports at most {MAX_CONSTRAINT_COLUMNS} "
                f"(paper §6.1 'Query Options')"
            )
        self.columns: tuple[str, ...] = tuple(columns)

    def __len__(self) -> int:
        return len(self.filters)

    def __bool__(self) -> bool:
        return bool(self.filters)

    @staticmethod
    def coerce(
        filters: "FilterSet | Sequence[Filter] | None",
    ) -> "FilterSet":
        if filters is None:
            return FilterSet()
        if isinstance(filters, FilterSet):
            return filters
        return FilterSet(filters)

    def mask(self, column_getter: Callable[[str], np.ndarray], n: int) -> np.ndarray:
        """Conjunction mask over ``n`` rows.

        ``column_getter`` maps a column name to its array — either host or
        device-resident — so the same code path serves every engine.
        """
        keep = np.ones(n, dtype=bool)
        for f in self.filters:
            keep &= f.mask(column_getter(f.column))
        return keep

    def __str__(self) -> str:
        return " AND ".join(str(f) for f in self.filters) or "TRUE"
