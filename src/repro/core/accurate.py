"""Accurate raster join (§4.3): exact results with minimal PIP tests.

Three steps, following the paper:

1. render the *outlines* of all polygons conservatively into a boundary
   mask (the Boundary FBO);
2. draw the points — a point whose fragment lands on a boundary pixel is
   joined exactly through the grid index (JoinPoint: probe + PIP against
   every candidate), every other point accumulates into the point FBO;
3. draw the polygons — fragments on boundary pixels are discarded (their
   points were already handled), the rest add their FBO partial aggregates
   to the owning polygon.

Only points near polygon outlines ever see a PIP test; everything else is
pure rasterization.  The result is exact for any resolution — resolution
only shifts work between the PIP path and the raster path.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.aggregates import Aggregate
from repro.core.engine import (
    SpatialAggregationEngine,
    grid_pip_aggregate,
)
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.geometry.polygon import PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_line import outline_pixels
from repro.graphics.raster_triangle import triangle_coverage_mask
from repro.graphics.viewport import Canvas, Viewport
from repro.index.grid import GridIndex
from repro.types import ExecutionStats


class AccurateRasterJoin(SpatialAggregationEngine):
    """Exact raster join: rasterization plus boundary-only PIP tests."""

    name = "accurate-raster"

    def __init__(
        self,
        resolution: int = 1024,
        device: GPUDevice | None = None,
        grid_resolution: int = 1024,
    ) -> None:
        super().__init__(device)
        if resolution < 1:
            raise QueryError(f"resolution must be >= 1, got {resolution}")
        self.resolution = resolution
        self.grid_resolution = grid_resolution
        # Exactness demands lossless per-pixel accumulators.  The paper's
        # GL implementation uses 32-bit channels; in this reproduction the
        # accurate engine upgrades them to float64 so attribute sums and
        # order statistics match the PIP path bit-for-bit.
        self.fbo_dtype = np.float64

    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        extent = polygons.bbox
        probe = Canvas.for_resolution(extent, self.resolution)
        pad = max(probe.pixel_width, probe.pixel_height)
        canvas = Canvas.for_resolution(extent.expanded(pad), self.resolution)
        stats.extra["canvas"] = (canvas.width, canvas.height)

        # Polygon preprocessing: triangulation + grid index (Table 1).
        start = time.perf_counter()
        triangles = [triangulate_polygon(p) for p in polygons]
        stats.triangulation_s = time.perf_counter() - start
        grid = GridIndex(polygons, resolution=self.grid_resolution,
                         assignment="mbr")
        stats.index_build_s = grid.build_seconds

        columns = self.required_columns(aggregate, filters)
        accumulators = {
            ch: np.full(len(polygons), aggregate.identity(), dtype=np.float64)
            for ch in aggregate.channels
        }

        tiles = list(canvas.tiles(self.max_resolution))
        stats.extra["tiles"] = len(tiles)
        for tile in tiles:
            self._tile_pass(tile, points, polygons, triangles, grid, columns,
                            aggregate, filters, accumulators, stats)
            stats.passes += 1
        return aggregate.finalize(accumulators), accumulators

    def execute_stream(self, chunk_source, polygons, aggregate=None,
                       filters=None):
        """Streamed execution: boundary FBO, grid index, and polygon pass
        are built once (per tile); only the point routing runs per chunk."""
        from repro.core.aggregates import Count
        from repro.core.filters import FilterSet
        from repro.types import AggregationResult, ExecutionStats

        aggregate = aggregate or Count()
        filter_set = FilterSet.coerce(filters)
        columns = self.required_columns(aggregate, filter_set)
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)

        extent = polygons.bbox
        probe = Canvas.for_resolution(extent, self.resolution)
        pad = max(probe.pixel_width, probe.pixel_height)
        canvas = Canvas.for_resolution(extent.expanded(pad), self.resolution)
        stats.extra["canvas"] = (canvas.width, canvas.height)

        start = time.perf_counter()
        triangles = [triangulate_polygon(p) for p in polygons]
        stats.triangulation_s = time.perf_counter() - start
        grid = GridIndex(polygons, resolution=self.grid_resolution,
                         assignment="mbr")
        stats.index_build_s = grid.build_seconds

        accumulators = {
            ch: np.full(len(polygons), aggregate.identity(), dtype=np.float64)
            for ch in aggregate.channels
        }
        tiles = list(canvas.tiles(self.max_resolution))
        stats.extra["tiles"] = len(tiles)
        saw_chunk = False
        for tile in tiles:
            boundary = self._render_boundary(tile, polygons, stats)
            fbo = FrameBuffer.for_viewport(
                tile, channels=aggregate.channels, dtype=self.fbo_dtype
            )
            if aggregate.blend != "add":
                for name in aggregate.channels:
                    fbo.channel(name).fill(aggregate.identity())
            for chunk in chunk_source():
                saw_chunk = True
                self._route_points(tile, boundary, fbo, chunk, polygons, grid,
                                   columns, aggregate, filter_set,
                                   accumulators, stats)
            self._polygon_pass(tile, boundary, fbo, polygons, triangles,
                               aggregate, accumulators, stats)
            stats.passes += 1
        if not saw_chunk:
            raise QueryError("chunk source produced no chunks")
        if stats.batches == 0:
            stats.batches = 1
        return AggregationResult(
            values=aggregate.finalize(accumulators),
            channels=accumulators,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _tile_pass(
        self,
        tile: Viewport,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        grid: GridIndex,
        columns: tuple[str, ...],
        aggregate: Aggregate,
        filters: FilterSet,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        # Step 1: boundary FBO — conservative outlines of every polygon.
        boundary = self._render_boundary(tile, polygons, stats)

        # Step 2: draw points, routing boundary-pixel points to JoinPoint.
        fbo = FrameBuffer.for_viewport(
            tile, channels=aggregate.channels, dtype=self.fbo_dtype
        )
        if aggregate.blend != "add":
            for name in aggregate.channels:
                fbo.channel(name).fill(aggregate.identity())
        self._route_points(tile, boundary, fbo, points, polygons, grid,
                           columns, aggregate, filters, accumulators, stats)

        # Step 3: draw polygons, discarding boundary fragments.
        self._polygon_pass(tile, boundary, fbo, polygons, triangles,
                           aggregate, accumulators, stats)

    # ------------------------------------------------------------------
    # Shared stages (used by both monolithic and streamed execution)
    # ------------------------------------------------------------------
    def _render_boundary(
        self,
        tile: Viewport,
        polygons: PolygonSet,
        stats: ExecutionStats,
    ) -> np.ndarray:
        """Conservative outline mask of every polygon on this tile."""
        start = time.perf_counter()
        boundary = np.zeros((tile.height, tile.width), dtype=bool)
        for polygon in polygons:
            if not polygon.bbox.intersects(tile.bbox):
                continue
            ix, iy = outline_pixels(tile, polygon.rings)
            boundary[iy, ix] = True
        stats.processing_s += time.perf_counter() - start
        stats.extra["boundary_pixels"] = (
            stats.extra.get("boundary_pixels", 0) + int(boundary.sum())
        )
        return boundary

    def _route_points(
        self,
        tile: Viewport,
        boundary: np.ndarray,
        fbo: FrameBuffer,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        grid: GridIndex,
        columns: tuple[str, ...],
        aggregate: Aggregate,
        filters: FilterSet,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        """Point pass: boundary points join exactly, the rest rasterize."""
        for batch in self._batches(points, columns, stats,
                                   reserved_bytes=fbo.nbytes):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            ix, iy, inside = tile.pixel_of(xs, ys)
            if not inside.all():
                xs, ys = xs[inside], ys[inside]
                ix, iy = ix[inside], iy[inside]
                attrs = {n: a[inside] for n, a in attrs.items()}
            if len(xs) == 0:
                stats.processing_s += time.perf_counter() - start
                continue
            on_boundary = boundary[iy, ix]
            stats.boundary_points += int(np.count_nonzero(on_boundary))
            # Boundary points: exact join via the polygon grid index.
            grid_pip_aggregate(
                xs[on_boundary], ys[on_boundary],
                {n: a[on_boundary] for n, a in attrs.items()},
                grid, polygons, aggregate, accumulators, stats,
            )
            # Interior points: plain additive rasterization.
            interior = ~on_boundary
            iix, iiy = ix[interior], iy[interior]
            if aggregate.blend == "add":
                for ch, col in aggregate.channels.items():
                    vals = attrs[col][interior] if col is not None else 1.0
                    np.add.at(fbo.channel(ch), (iiy, iix), vals)
            else:
                for ch, col in aggregate.channels.items():
                    vals = attrs[col][interior]
                    if aggregate.blend == "min":
                        np.minimum.at(fbo.channel(ch), (iiy, iix), vals)
                    else:
                        np.maximum.at(fbo.channel(ch), (iiy, iix), vals)
            stats.processing_s += time.perf_counter() - start

    def _polygon_pass(
        self,
        tile: Viewport,
        boundary: np.ndarray,
        fbo: FrameBuffer,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        """Polygon pass skipping boundary fragments (handled exactly)."""
        start = time.perf_counter()
        channels = {ch: fbo.channel(ch) for ch in aggregate.channels}
        for pid, polygon in enumerate(polygons):
            if not polygon.bbox.intersects(tile.bbox):
                continue
            for tri in triangles[pid]:
                x0, y0, mask = triangle_coverage_mask(tile, tri)
                if mask.size == 0:
                    continue
                bwin = boundary[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]]
                keep = mask & ~bwin
                if not keep.any():
                    continue
                for ch, channel in channels.items():
                    window = channel[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]]
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(aggregate.reduce_pixels(window[keep])),
                    )
        stats.processing_s += time.perf_counter() - start
