"""Accurate raster join (§4.3): exact results with minimal PIP tests.

Three steps, following the paper:

1. render the *outlines* of all polygons conservatively into a boundary
   mask (the Boundary FBO);
2. draw the points — a point whose fragment lands on a boundary pixel is
   joined exactly through the grid index (JoinPoint: probe + PIP against
   every candidate), every other point accumulates into the point FBO;
3. draw the polygons — fragments on boundary pixels are discarded (their
   points were already handled), the rest add their FBO partial aggregates
   to the owning polygon.

Only points near polygon outlines ever see a PIP test; everything else is
pure rasterization.  The result is exact for any resolution — resolution
only shifts work between the PIP path and the raster path.

Everything that depends only on the polygon set — canvas layout,
triangulations, the grid index, per-tile boundary masks, and per-polygon
pixel coverage — lives in a :class:`~repro.cache.prepared.PreparedPolygons`
artifact.  Monolithic and streamed execution share the same per-tile
stages over that artifact, and attaching a
:class:`~repro.cache.session.QuerySession` makes repeated queries over the
same polygons skip the whole rebuild.
"""

from __future__ import annotations

import pickle
import time
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.cache.pyramid import (
    AggregatePyramid,
    channel_kinds,
    ensure_polygon_blocks,
)
from repro.cache.session import QuerySession
from repro.core.aggregates import Aggregate, Count
from repro.core.engine import (
    SpatialAggregationEngine,
    grid_pip_aggregate,
)
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.exec import shm
from repro.exec.backend import ProcessBackend, TilePartial
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_line import outline_pixels, outline_pixels_many
from repro.graphics.raster_triangle import triangle_coverage_mask
from repro.graphics.viewport import Canvas, Viewport
from repro.obs import metrics, trace
from repro.types import AggregationResult, ExecutionStats


class AccurateRasterJoin(SpatialAggregationEngine):
    """Exact raster join: rasterization plus boundary-only PIP tests."""

    name = "accurate-raster"

    def __init__(
        self,
        resolution: int = 1024,
        device: GPUDevice | None = None,
        grid_resolution: int = 1024,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__(device, session=session, config=config)
        if resolution < 1:
            raise QueryError(f"resolution must be >= 1, got {resolution}")
        self.resolution = resolution
        self.grid_resolution = grid_resolution
        # Exactness demands lossless per-pixel accumulators.  The paper's
        # GL implementation uses 32-bit channels; in this reproduction the
        # accurate engine upgrades them to float64 so attribute sums and
        # order statistics match the PIP path bit-for-bit.
        self.fbo_dtype = np.float64
        # Whether a *resident* aggregate pyramid may answer queries
        # (repro.cache.pyramid).  Building one is always explicit
        # (build_pyramid / the planner's prewarm) — with nothing built,
        # execution is byte-for-byte the pre-pyramid path either way.
        self._pyramid = self.config.pyramid_enabled()

    # ------------------------------------------------------------------
    # Prepared state
    # ------------------------------------------------------------------
    def prepared_spec(self) -> tuple:
        """The render-spec part of this engine's artifact cache key.

        Everything besides geometry that prepared state depends on.  The
        optimizer probes sessions with this spec for cache-aware costing;
        it must stay in lockstep with what :meth:`_prepare` keys on.
        """
        return (
            "accurate",
            self.resolution,
            self.grid_resolution,
            self.max_resolution,
        )

    def _prepare(
        self, polygons: PolygonSet, stats: ExecutionStats
    ) -> PreparedPolygons:
        """Canvas layout, triangulations, and grid index — built once."""
        with trace.span("prepare", polygons=len(polygons)):
            prepared = self._prepared_state(
                polygons, self.prepared_spec(), stats
            )
            if prepared.canvas is None:
                extent = polygons.bbox
                probe = Canvas.for_resolution(extent, self.resolution)
                pad = max(probe.pixel_width, probe.pixel_height)
                prepared.canvas = Canvas.for_resolution(
                    extent.expanded(pad), self.resolution
                )
                prepared.tiles = list(
                    prepared.canvas.tiles(self.max_resolution)
                )
            prepared.ensure_triangles(polygons, stats)
            prepared.ensure_grid(polygons, self.grid_resolution, "mbr", stats)
            # Columnar MBRs feed the batched builders' vectorized per-tile
            # bin pass; built in the parent so tile tasks only read them.
            prepared.ensure_mbr_arrays(polygons)
        stats.extra["canvas"] = (prepared.canvas.width, prepared.canvas.height)
        return prepared

    # ------------------------------------------------------------------
    # Aggregate pyramid (GeoBlocks-style warm path; repro.cache.pyramid)
    # ------------------------------------------------------------------
    def pyramid_token(self, polygons: PolygonSet) -> tuple:
        """The grid-frame spec a pyramid over these polygons is keyed by.

        Mirrors what :meth:`_prepare`'s ``ensure_grid`` builds — the
        grid extent is :meth:`GridIndex.default_extent` of the polygon
        set — so a pyramid built here is addressable by any later query
        whose polygons share that frame (every pan/zoom stroke over the
        same union bbox).
        """
        from repro.index.grid import GridIndex

        ext = GridIndex.default_extent(polygons)
        return (
            "pyramid", self.grid_resolution, "mbr",
            (ext.xmin, ext.ymin, ext.xmax, ext.ymax),
        )

    def build_pyramid(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
    ) -> AggregatePyramid:
        """Explicitly build (or fetch) the pyramid for this frame.

        Building is never implicit — a query over a cold session runs
        the exact path untouched — so the one-off O(points) sort is paid
        exactly where the caller asked for it (a dashboard's "prewarm"
        step, the planner's :meth:`~repro.sql.planner.QueryPlanner.prewarm`,
        or a benchmark's setup).  Channels are added lazily by the first
        query that needs them.
        """
        if self.session is None:
            raise QueryError(
                "build_pyramid needs a QuerySession to retain the pyramid"
            )
        token = self.pyramid_token(polygons)
        pyramid = self.session.pyramid_lookup(points, token)
        if pyramid is not None:
            return pyramid
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)
        prepared = self._prepare(polygons, stats)
        pyramid = AggregatePyramid.build(points, prepared.grid)
        self.session.pyramid_register(points, token, pyramid)
        self.session.checkpoint()
        return pyramid

    def pyramid_warmth(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
    ) -> bool:
        """Costing probe: would :meth:`_run` take the pyramid path?

        Identity-keyed and hash-free (the optimizer calls it per
        candidate plan); optimistic the same way the session's
        :meth:`~repro.cache.session.QuerySession.pyramid_warm` is.
        """
        if not self._pyramid or self.session is None:
            return False
        return self.session.pyramid_warm(points, self.pyramid_token(polygons))

    def _pyramid_plan(
        self,
        prepared: PreparedPolygons,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[AggregatePyramid, dict] | None:
        """The resident pyramid serving this query, or ``None`` (exact path).

        ``None`` whenever the pyramid is disabled, nothing was ever
        built, the aggregate has a shape the partials cannot express,
        filters are present (cell partials pre-aggregate over *all*
        points), or the artifact lacks per-polygon units (no block
        classification to hang off).  The gate never builds anything —
        a cold query costs one O(1) probe plus, with a store attached,
        one content hash for the disk-tier key.
        """
        if not self._pyramid or self.session is None:
            return None
        if prepared.units is None or filters:
            return None
        kinds = channel_kinds(aggregate)
        if kinds is None:
            return None
        pyramid = self.session.pyramid_lookup(points, self.pyramid_token(polygons))
        if pyramid is None:
            stats.extra["pyramid"] = "cold"
            return None
        return pyramid, kinds

    def _run_pyramid(
        self,
        prepared: PreparedPolygons,
        pyramid: AggregatePyramid,
        kinds: dict,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Answer from cached block aggregates + boundary-cell PIP.

        Interior cells (the polygon boundary provably misses them) are
        folded from the pyramid's block partials with zero point reads;
        only the points of boundary cells are gathered and joined
        through the exact :func:`grid_pip_aggregate` — against a grid
        holding *boundary cells only*, so a point a block already
        counted is never PIP-tested for the same polygon.
        """
        self._record_execution_env(stats, len(prepared.tiles))
        start = time.perf_counter()
        pip_grid = ensure_polygon_blocks(prepared, polygons, prepared.grid)
        for kind, col in kinds.values():
            pyramid.ensure_channel(kind, col, points)
        accumulators = self._new_accumulators(polygons, aggregate)
        block_cells = 0
        with trace.span("pyramid-block-merge", polygons=len(polygons)):
            for pid, unit in enumerate(prepared.units):
                for ch, (kind, col) in kinds.items():
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(
                            pyramid.block_reduce(kind, col, unit.blocks)
                        ),
                    )
                block_cells += sum(len(ids) for _, ids in unit.blocks)
        fallback_cells = np.unique(np.concatenate(
            [unit.pip_cells for unit in prepared.units]
        )) if prepared.units else np.zeros(0, dtype=np.int64)
        idx = pyramid.gather_indices(fallback_cells)
        if len(idx):
            attrs = {
                col: points.column(col)[idx] for col in aggregate.columns
            }
            with trace.span("boundary-pip", points=int(len(idx))):
                grid_pip_aggregate(
                    points.column("x")[idx], points.column("y")[idx], attrs,
                    pip_grid, polygons, aggregate, accumulators, stats,
                )
        stats.points_processed += len(idx)
        stats.boundary_points += len(idx)
        stats.extra["pyramid"] = "hit"
        stats.extra["pyramid_cells"] = int(block_cells)
        stats.extra["pyramid_fallback_points"] = int(len(idx))
        metrics.counter("pyramid_block_cells", int(block_cells))
        metrics.counter("pyramid_fallback_points", int(len(idx)))
        stats.processing_s += time.perf_counter() - start
        return aggregate.finalize(accumulators), accumulators

    # ------------------------------------------------------------------
    # Execution (monolithic and streamed share the per-tile stages)
    # ------------------------------------------------------------------
    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        prepared = self._prepare(polygons, stats)
        plan = self._pyramid_plan(
            prepared, points, polygons, aggregate, filters, stats
        )
        if plan is not None:
            return self._run_pyramid(
                prepared, plan[0], plan[1], points, polygons, aggregate, stats
            )
        columns = self.required_columns(aggregate, filters)
        accumulators = self._new_accumulators(polygons, aggregate)
        self._execute_tiles(
            prepared, lambda: iter((points,)), polygons, aggregate, filters,
            columns, accumulators, stats, points_hint=points,
        )
        return aggregate.finalize(accumulators), accumulators

    def execute_stream(self, chunk_source, polygons, aggregate=None,
                       filters=None):
        """Streamed execution: boundary FBO, grid index, and polygon pass
        are built once (per tile); only the point routing runs per chunk.

        With a parallel backend, tile workers invoke (and iterate)
        ``chunk_source`` concurrently — each call must return an
        independent iterator (see :meth:`SpatialAggregationEngine.execute_stream`).
        """
        aggregate = aggregate or Count()
        filter_set = FilterSet.coerce(filters)
        columns = self.required_columns(aggregate, filter_set)
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)
        with trace.query_scope(self.name) as root:
            prepared = self._prepare(polygons, stats)
            accumulators = self._new_accumulators(polygons, aggregate)
            saw_chunk = self._execute_tiles(
                prepared, chunk_source, polygons, aggregate, filter_set,
                columns, accumulators, stats,
            )
            if not saw_chunk:
                raise QueryError("chunk source produced no chunks")
            if stats.batches == 0:
                stats.batches = 1
            if root is not None:
                root.attrs.update(stats.as_span_attrs())
        self._checkpoint_session()
        return AggregationResult(
            values=aggregate.finalize(accumulators),
            channels=accumulators,
            stats=stats,
            trace=root,
        )

    def _execute_tiles(
        self,
        prepared: PreparedPolygons,
        source: Callable[[], Iterator],
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        columns: tuple[str, ...],
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
        points_hint: PointDataset | ResidentPointSet | None = None,
    ) -> bool:
        """Run the three per-tile stages; ``source()`` yields point chunks.

        Tiles are independent: each task folds its own accumulators from
        the blend identity and the partials are merged in tile-index
        order, so the configured backend (serial, thread, or process
        pool) never changes a single bit of the result.  Returns whether
        any chunk was produced (streamed callers must reject an empty
        source).
        """
        tiles = prepared.tiles
        self._record_execution_env(stats, len(tiles))
        fbo_bytes = self._max_fbo_bytes(tiles, aggregate, self.fbo_dtype)
        parallelism = self._tile_concurrency(points_hint, columns, fbo_bytes)
        retain = self.session is not None
        # Partitioned point pass: scan the source once in the parent and
        # hand each tile only its own (batch-aligned) sub-chunks; the
        # full-scan path re-iterates the source per tile.  Results are
        # bit-identical either way (see repro.exec.partition).
        partitioned = self._partition_tile_chunks(
            prepared, source, aggregate, columns, self.fbo_dtype, stats,
            points_hint=points_hint,
        )
        units_mode = retain and prepared.units is not None
        # Captured before dispatch: worker threads and forked children
        # have no ambient tracer, so each tile task records into its own
        # (shipped home via TilePartial.span).
        tracing = trace.active() is not None

        def run_tile(tile_idx: int, tile: Viewport) -> TilePartial:
            return self._run_tile(
                tile_idx, tile,
                prepared=prepared, polygons=polygons, aggregate=aggregate,
                filters=filters, columns=columns,
                chunks=(
                    source() if partitioned is None
                    else partitioned[0][tile_idx]
                ),
                units_mode=units_mode, retain=retain, tracing=tracing,
            )

        # ``concurrent`` marks that child (tile) spans may overlap in
        # wall time, so their durations can legitimately sum past the
        # parent's — the span-containment invariant exempts it.
        with trace.span("tiles", concurrent=self.backend.workers > 1):
            partials = None
            if partitioned is not None:
                partials = self._resident_dispatch(
                    prepared, polygons, aggregate, filters, columns,
                    partitioned[0], units_mode, retain, tracing,
                    parallelism, stats,
                )
            if partials is None:
                partials = self._dispatch_tiles(tiles, run_tile, parallelism,
                                                stats)
            saw = self._merge_tile_partials(
                partials, prepared, aggregate, accumulators, stats
            )
        return saw or (partitioned is not None and partitioned[1])

    def _run_tile(
        self,
        tile_idx: int,
        tile: Viewport,
        *,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        columns: tuple[str, ...],
        chunks,
        units_mode: bool,
        retain: bool,
        tracing: bool,
    ) -> TilePartial:
        """One whole tile task: boundary, point pass, polygon pass.

        The unit every dispatch mode runs — inline, in a thread, in a
        forked child, or (rehydrated from a state blob) in a resident
        spawned worker.  Everything execution-context-dependent arrives
        as an argument rather than being read off ``self`` — in
        particular ``retain``, because a resident worker executes a
        session-less engine clone on behalf of a session-holding parent
        and must still build/replay coverage and ship fresh prepared
        pieces home.
        """
        with trace.tile_scope(tracing, tile=tile_idx) as tile_span:
            metrics.counter("engine_tile_tasks", engine=self.name)
            tile_stats = ExecutionStats(
                engine=self.name, batches=0, passes=0
            )
            partial_acc = self._new_accumulators(polygons, aggregate)
            boundary, built_boundary, built_unit_boundary = (
                self._tile_boundary(
                    tile_idx, tile, prepared, polygons, tile_stats,
                    units_mode,
                )
            )
            fbo = self._tile_framebuffer(tile, aggregate, self.fbo_dtype)
            saw_points = False
            with trace.span("point-pass"):
                for chunk in chunks:
                    saw_points = True
                    self._route_points(
                        tile, boundary, fbo, chunk, polygons,
                        prepared.grid, columns, aggregate, filters,
                        partial_acc, tile_stats,
                    )
            with trace.span("polygon-pass"):
                built_coverage, built_unit_coverage = self._polygon_pass(
                    tile_idx, tile, prepared, boundary, fbo, polygons,
                    aggregate, partial_acc, tile_stats, units_mode,
                    retain=retain,
                )
            tile_stats.passes = 1
            return TilePartial(
                tile_idx, partial_acc, tile_stats, saw_points=saw_points,
                boundary_mask=built_boundary if retain else None,
                coverage=built_coverage if retain else None,
                unit_boundary=built_unit_boundary if retain else None,
                unit_coverage=built_unit_coverage if retain else None,
                span=tile_span,
            )

    # ------------------------------------------------------------------
    # Resident dispatch (shared-memory data plane)
    # ------------------------------------------------------------------
    def _resident_clone(self) -> "AccurateRasterJoin":
        """A slim picklable engine for a resident worker's state blob.

        Session-less: the worker's job is pure per-tile compute over
        descriptor-addressed inputs — the session lives in the parent
        (``retain`` travels on each spec) and partitioning already
        happened.  The device *is* carried (its pickle support exists
        for exactly this — worker-side clones with their own locks and
        accounting, like the fork path's copy-on-write copies); the tile
        arithmetic it would change (batch planning) is bypassed anyway
        because every shm chunk is a single zero-transfer batch.
        ``batch_raster`` is carried over too: bit-identical either way,
        but builds shipped home should match what the parent would have
        built.
        """
        return AccurateRasterJoin(
            resolution=self.resolution,
            grid_resolution=self.grid_resolution,
            device=self.device,
            session=None,
            config=EngineConfig(
                backend="serial", workers=1, partition_points=False,
                batch_raster=self._batch_raster, pyramid=False,
            ),
        )

    def _resident_dispatch(
        self,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        columns: tuple[str, ...],
        per_tile: list[list],
        units_mode: bool,
        retain: bool,
        tracing: bool,
        parallelism: int | None,
        stats: ExecutionStats,
    ) -> list[TilePartial] | None:
        """Fan the partitioned tiles across the resident worker pool.

        Returns tile partials in tile order — accumulators read back out
        of the shared result buffer, everything else (stats, spans,
        metrics deltas, freshly built prepared pieces) shipped by value —
        or ``None`` when this query cannot take the resident path, in
        which case the caller falls back to closure dispatch (forked or
        in-process), which is bit-identical.

        Eligibility: a resident-enabled :class:`ProcessBackend` and
        every partitioned sub-chunk already shm-backed (the session's
        shm tier exported them at partition-store time; host chunks
        would have to be pickled, which is the cost this path exists to
        remove).  A device does not disqualify — workers carry a device
        clone in the state blob, mirroring the fork path's copy-on-write
        clones, and shm chunks are single zero-transfer batches in every
        process so the device's batch planning never enters the tile
        arithmetic.
        """
        backend = self.backend
        if type(self) is not AccurateRasterJoin:
            return None
        if not isinstance(backend, ProcessBackend):
            return None
        tiles = prepared.tiles
        if not backend.resident_capable(len(tiles), parallelism):
            return None
        if not all(
            isinstance(chunk, shm.ShmChunk)
            for chunks in per_tile for chunk in chunks
        ):
            return None
        channel_names = tuple(aggregate.channels)
        shape = (len(tiles), len(channel_names), len(polygons))
        # Content-generation token: prepared.version bumps on every
        # artifact mutation (including the parent-side installs of
        # worker-built pieces), so warming or editing rolls the blob —
        # and with it the state_key workers cache by.  The anchor tuple
        # keeps both objects alive while the entry is cached, so the
        # id()s cannot be recycled.
        device_token = None if self.device is None else (
            self.device.capacity_bytes, self.device.max_resolution,
        )
        token = (
            "resident-state", id(prepared), prepared.version, id(polygons),
            self.resolution, self.grid_resolution, self.max_resolution,
            self._batch_raster, device_token,
        )

        def build_blob() -> bytes:
            return pickle.dumps(
                (self._resident_clone(), prepared, polygons),
                protocol=pickle.HIGHEST_PROTOCOL,
            )

        from repro.exec.resident import TileTaskSpec

        # One guard across blob/buffer/dispatch/read-back: a concurrent
        # query on the same shared backend serializes here instead of
        # swapping the result buffer out from under this one.
        with backend.resident_guard():
            state_key, state_ref = backend.resident_state(
                token, (prepared, polygons), build_blob
            )
            result_ref = backend.resident_result(shape)
            specs = [
                TileTaskSpec(
                    index=idx, state_key=state_key, state_ref=state_ref,
                    tile_idx=idx, aggregate=aggregate, filters=filters,
                    columns=columns, chunks=tuple(per_tile[idx]),
                    units_mode=units_mode, retain=retain, tracing=tracing,
                    result_ref=result_ref, slot=idx,
                    channel_names=channel_names,
                )
                for idx in range(len(tiles))
            ]
            partials = backend.run_specs(specs, parallelism)
            result = shm.view(result_ref)
            for partial in partials:
                # Copy out: the buffer is reused by the next dispatch.
                partial.accumulators = {
                    ch: np.array(result[partial.tile_idx, ci])
                    for ci, ch in enumerate(channel_names)
                }
        if backend.last_pool_event is not None:
            stats.extra["pool"] = backend.last_pool_event
        return partials

    # ------------------------------------------------------------------
    # Per-tile stages
    # ------------------------------------------------------------------

    def _tile_boundary(
        self,
        tile_idx: int,
        tile: Viewport,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        tile_stats: ExecutionStats,
        units_mode: bool,
    ) -> tuple[np.ndarray, np.ndarray | None, dict | None]:
        """This tile's boundary mask: cached, composed, or rendered.

        Returns ``(boundary, built_boundary, built_unit_boundary)`` —
        the mask to route points against plus whatever was freshly built
        for the caller to ship home in its :class:`TilePartial` (``None``
        when the artifact already held the mask).  Shared by the solo
        tile task and the fused shared-scan executor
        (:mod:`repro.serve.fused`), which runs it once per member query.
        """
        boundary = prepared.boundary_masks.get(tile_idx)
        if boundary is not None:
            tile_stats.extra["boundary_pixels"] = int(boundary.sum())
            return boundary, None, None
        built_unit_boundary = None
        with trace.span("boundary"):
            if units_mode:
                # Per-polygon build: rasterize outlines only for
                # polygons whose unit lacks this tile (after an edit,
                # just the changed ones) and OR every polygon's pixels
                # into the tile mask — bit-identical to the direct
                # whole-set render.
                start = time.perf_counter()
                built_unit_boundary = self._build_unit_boundaries(
                    tile, prepared, polygons,
                    prepared.missing_boundary_pids(tile_idx),
                )
                boundary = prepared.compose_boundary(
                    tile_idx, tile, built_unit_boundary
                )
                tile_stats.processing_s += time.perf_counter() - start
                tile_stats.extra["boundary_pixels"] = int(boundary.sum())
            else:
                boundary = self._render_boundary(tile, polygons, tile_stats)
        return boundary, boundary, built_unit_boundary

    @staticmethod
    def _polygon_outline(
        tile: Viewport, polygon
    ) -> tuple[np.ndarray, np.ndarray]:
        """One polygon's ``(ix, iy)`` outline pixels on this tile.

        The per-polygon slice of :meth:`_render_boundary`: the direct
        mask sets exactly the union of these arrays over all polygons,
        so composing them reproduces it bit for bit.  Polygons whose
        box misses the tile contribute empty arrays (same gate the
        direct loop applies).
        """
        if not polygon.bbox.intersects(tile.bbox):
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        ix, iy = outline_pixels(tile, polygon.rings)
        return np.asarray(ix), np.asarray(iy)

    def _build_unit_boundaries(
        self,
        tile: Viewport,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        pids: Sequence[int],
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-polygon outline pixels for the requested pids.

        Batched mode runs one vectorized edge pass over every requested
        polygon that survives the tile bin gate
        (:func:`~repro.graphics.raster_line.outline_pixels_many`); the
        fallback loops :meth:`_polygon_outline` per pid.  Both return
        identical pixel arrays for every requested pid — gated-out
        polygons contribute empty arrays either way.
        """
        if not self._batch_raster:
            return {
                pid: self._polygon_outline(tile, polygons[pid])
                for pid in pids
            }
        hit = self._tile_pid_mask(tile, prepared, polygons)
        empty = np.zeros(0, dtype=np.int64)
        built: dict[int, tuple[np.ndarray, np.ndarray]] = {
            pid: (empty, empty) for pid in pids
        }
        built.update(outline_pixels_many(
            tile, {pid: polygons[pid].rings for pid in pids if hit[pid]}
        ))
        return built

    def _render_boundary(
        self,
        tile: Viewport,
        polygons: PolygonSet,
        stats: ExecutionStats,
    ) -> np.ndarray:
        """Conservative outline mask of every polygon on this tile."""
        start = time.perf_counter()
        boundary = np.zeros((tile.height, tile.width), dtype=bool)
        if self._batch_raster:
            # One vectorized pass over every intersecting polygon's
            # edges; OR-ing the per-polygon pixel sets is order-free, so
            # the mask matches the per-polygon loop bit for bit.
            rings = {
                pid: polygon.rings for pid, polygon in enumerate(polygons)
                if polygon.bbox.intersects(tile.bbox)
            }
            for ix, iy in outline_pixels_many(tile, rings).values():
                if len(ix):
                    boundary[iy, ix] = True
        else:
            for polygon in polygons:
                if not polygon.bbox.intersects(tile.bbox):
                    continue
                ix, iy = outline_pixels(tile, polygon.rings)
                boundary[iy, ix] = True
        stats.processing_s += time.perf_counter() - start
        # Assign, don't accumulate: this stat is the tile's boundary
        # population, and every caller renders at most one mask per tile
        # stats object.  Adding to a value another branch already
        # assigned would double-count it (the composed-boundary branch
        # in _execute_tiles assigns the same key).
        stats.extra["boundary_pixels"] = int(boundary.sum())
        return boundary

    def _route_points(
        self,
        tile: Viewport,
        boundary: np.ndarray,
        fbo: FrameBuffer,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        grid,
        columns: tuple[str, ...],
        aggregate: Aggregate,
        filters: FilterSet,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        """Point pass: boundary points join exactly, the rest rasterize."""
        for batch in self._batches(points, columns, stats,
                                   reserved_bytes=fbo.nbytes):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            ix, iy, inside = tile.pixel_of(xs, ys)
            if not inside.all():
                xs, ys = xs[inside], ys[inside]
                ix, iy = ix[inside], iy[inside]
                attrs = {n: a[inside] for n, a in attrs.items()}
            if len(xs) == 0:
                stats.processing_s += time.perf_counter() - start
                continue
            self._route_batch(
                boundary, fbo, xs, ys, ix, iy, attrs, polygons, grid,
                aggregate, accumulators, stats,
            )
            stats.processing_s += time.perf_counter() - start

    @staticmethod
    def _route_batch(
        boundary: np.ndarray,
        fbo: FrameBuffer,
        xs: np.ndarray,
        ys: np.ndarray,
        ix: np.ndarray,
        iy: np.ndarray,
        attrs: dict[str, np.ndarray],
        polygons: PolygonSet,
        grid,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        """Route one projected batch: boundary points join exactly, the
        rest rasterize into the tile framebuffer.

        Inputs are the post-filter, post-projection arrays (already
        subset to in-tile points), so the fused shared-scan executor can
        evaluate filters and projection once per distinct filter set and
        replay this routing per member query against that query's own
        boundary mask, framebuffer, grid, and accumulators — the exact
        arithmetic of a solo run, in the exact order.  ``attrs`` may
        carry extra columns (the fused union); only the aggregate's own
        columns are read.
        """
        on_boundary = boundary[iy, ix]
        num_boundary = int(np.count_nonzero(on_boundary))
        stats.boundary_points += num_boundary
        all_boundary = num_boundary == len(xs)
        if num_boundary:
            # Boundary points: exact join via the polygon grid index.
            # When the whole batch is boundary the masked gathers are
            # skipped — identical values in identical order.
            with trace.span("boundary-pip", points=num_boundary):
                grid_pip_aggregate(
                    xs if all_boundary else xs[on_boundary],
                    ys if all_boundary else ys[on_boundary],
                    attrs if all_boundary else
                    {n: a[on_boundary] for n, a in attrs.items()},
                    grid, polygons, aggregate, accumulators, stats,
                )
        if not all_boundary:
            # Interior points: plain additive rasterization.  A batch
            # with no boundary points skips the mask entirely — the
            # unmasked arrays are the same values in the same order,
            # so the scatter visits pixels identically.
            if num_boundary:
                interior = ~on_boundary
                iix, iiy = ix[interior], iy[interior]
            else:
                interior = None
                iix, iiy = ix, iy

            def _vals(col):
                return attrs[col] if interior is None else attrs[col][interior]

            if aggregate.blend == "add":
                for ch, col in aggregate.channels.items():
                    vals = _vals(col) if col is not None else 1.0
                    np.add.at(fbo.channel(ch), (iiy, iix), vals)
            else:
                for ch, col in aggregate.channels.items():
                    vals = _vals(col)
                    if aggregate.blend == "min":
                        np.minimum.at(fbo.channel(ch), (iiy, iix), vals)
                    else:
                        np.maximum.at(fbo.channel(ch), (iiy, iix), vals)

    def _polygon_pass(
        self,
        tile_idx: int,
        tile: Viewport,
        prepared: PreparedPolygons,
        boundary: np.ndarray,
        fbo: FrameBuffer,
        polygons: PolygonSet,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
        units_mode: bool = False,
        retain: bool | None = None,
    ) -> tuple[list | None, dict | None]:
        """Polygon pass skipping boundary fragments (handled exactly).

        The covered-pixel indices of every polygon are a pure function of
        the tile, the triangulation, and the boundary mask, so they are
        computed once per artifact and replayed on later executions; the
        per-query work is only the channel gather + reduction.  Returns
        ``(composed coverage, per-polygon raw pieces)`` freshly built for
        the caller to install into the artifact (tile tasks never mutate
        shared prepared state — under the process backend the mutation
        would be lost in the fork).  Under ``units_mode`` only polygons
        whose unit lacks this tile are rasterized (after an edit, just
        the changed ones); composition applies the boundary exclusion to
        every polygon's raw pieces, which is bit-identical to the fused
        direct build.  ``retain`` selects the replay/build path over the
        direct reduce; its default (is a session attached?) is right
        in-process, while a resident worker's session-less clone passes
        ``True`` explicitly — it computes *for* a retaining parent.
        Both paths are bit-identical (see the branch comments below).
        """
        if retain is None:
            retain = self.session is not None
        start = time.perf_counter()
        channels = {ch: fbo.channel(ch) for ch in aggregate.channels}
        if not retain:
            if self._batch_raster:
                # One batched raster pass over the whole set; exclusion
                # filters each piece's row-major pixels exactly like
                # ``np.nonzero(mask & ~bwin)``, and the index gather
                # reads the same values in the same order as the scalar
                # reducer's ``window[keep]`` — bit-identical results.
                for pid, pieces in self._coverage_batched(
                    tile, prepared, polygons, prepared.triangles, boundary
                ):
                    for piece_iy, piece_ix in pieces:
                        for ch, channel in channels.items():
                            accumulators[ch][pid] = aggregate.combine(
                                np.asarray(accumulators[ch][pid]),
                                np.asarray(aggregate.reduce_pixels(
                                    channel[piece_iy, piece_ix]
                                )),
                            )
            else:
                # No cache to warm: reduce each piece's window directly.
                # The boolean gather visits pixels in the same row-major
                # order as the replayed index arrays, so both paths are
                # bit-identical.
                for pid, x0, y0, keep in self._coverage_pieces(
                    tile, polygons, prepared.triangles, boundary
                ):
                    for ch, channel in channels.items():
                        window = channel[y0:y0 + keep.shape[0],
                                         x0:x0 + keep.shape[1]]
                        accumulators[ch][pid] = aggregate.combine(
                            np.asarray(accumulators[ch][pid]),
                            np.asarray(aggregate.reduce_pixels(window[keep])),
                        )
            elapsed = time.perf_counter() - start
            stats.processing_s += elapsed
            stats.polygon_pass_s += elapsed
            return None, None
        built = None
        built_units = None
        coverage = prepared.coverage.get(tile_idx)
        if coverage is None:
            if units_mode:
                if self._batch_raster:
                    built_units = self._batched_unit_coverage(
                        tile, prepared, polygons, prepared.triangles,
                        prepared.missing_coverage_pids(tile_idx),
                    )
                else:
                    built_units = {
                        pid: self._unit_coverage(
                            tile, polygons[pid], prepared.triangles[pid]
                        )
                        for pid in prepared.missing_coverage_pids(tile_idx)
                    }
                coverage = built = prepared.compose_coverage(
                    tile_idx, boundary, built_units
                )
            elif self._batch_raster:
                coverage = built = self._coverage_batched(
                    tile, prepared, polygons, prepared.triangles, boundary
                )
            else:
                coverage = built = self._build_coverage(
                    tile, polygons, prepared.triangles, boundary
                )
        for pid, pieces in coverage:
            for piece_iy, piece_ix in pieces:
                for ch, channel in channels.items():
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(
                            aggregate.reduce_pixels(channel[piece_iy, piece_ix])
                        ),
                    )
        elapsed = time.perf_counter() - start
        stats.processing_s += elapsed
        stats.polygon_pass_s += elapsed
        return built, built_units

    @staticmethod
    def _unit_coverage(
        tile: Viewport,
        polygon,
        triangles: Sequence[np.ndarray],
    ) -> list:
        """One polygon's raw coverage pieces on this tile.

        The pre-exclusion slice of :meth:`_coverage_pieces`: one
        ``(iy, ix)`` piece per rasterized triangle, in traversal order,
        *without* the boundary mask applied (exclusion depends on the
        whole set's outlines and runs at composition time, so an edit to
        another polygon never invalidates these arrays).
        """
        pieces: list = []
        if polygon.bbox.intersects(tile.bbox):
            for tri in triangles:
                x0, y0, mask = triangle_coverage_mask(tile, tri)
                if mask.size == 0 or not mask.any():
                    continue
                ky, kx = np.nonzero(mask)
                pieces.append((ky + y0, kx + x0))
        return pieces

    def _coverage_batched(
        self,
        tile: Viewport,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        boundary: np.ndarray,
    ) -> list:
        """Boundary-excluded coverage via one batched raster pass.

        The batched equivalent of :meth:`_build_coverage`: raw pieces
        come out of the whole-set rasterizer grouped per polygon, then
        the boundary exclusion filters each piece in its own row-major
        order — reproducing the direct builder's
        ``np.nonzero(mask & ~bwin)`` arrays exactly, in the same
        (polygon, triangle) traversal order.
        """
        raw = self._batched_unit_coverage(
            tile, prepared, polygons, triangles, range(len(polygons))
        )
        coverage: list = []
        for pid in range(len(polygons)):
            kept: list = []
            for piece_iy, piece_ix in raw[pid]:
                excluded = boundary[piece_iy, piece_ix]
                if not excluded.any():
                    kept.append((piece_iy, piece_ix))
                else:
                    keep = ~excluded
                    if keep.any():
                        kept.append((piece_iy[keep], piece_ix[keep]))
            if kept:
                coverage.append((pid, kept))
        return coverage

    @staticmethod
    def _coverage_pieces(
        tile: Viewport,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        boundary: np.ndarray,
    ):
        """Yield (pid, x0, y0, keep) per rasterized triangle piece.

        The single source of the polygon-pass traversal: triangulation
        order, viewport clipping, and boundary exclusion live here so the
        direct reducer and the coverage builder can never drift apart.
        """
        for pid, polygon in enumerate(polygons):
            if not polygon.bbox.intersects(tile.bbox):
                continue
            for tri in triangles[pid]:
                x0, y0, mask = triangle_coverage_mask(tile, tri)
                if mask.size == 0:
                    continue
                bwin = boundary[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]]
                keep = mask & ~bwin
                if not keep.any():
                    continue
                yield pid, x0, y0, keep

    @classmethod
    def _build_coverage(
        cls,
        tile: Viewport,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        boundary: np.ndarray,
    ) -> list:
        """Per-polygon (iy, ix) covered-pixel arrays, boundary excluded.

        One piece per rasterized triangle, in traversal order, so the
        replayed reduction visits pixels in exactly the order the direct
        rasterization would — results are bit-identical either way.
        """
        coverage: list = []
        for pid, x0, y0, keep in cls._coverage_pieces(
            tile, polygons, triangles, boundary
        ):
            ky, kx = np.nonzero(keep)
            piece = (ky + y0, kx + x0)
            if coverage and coverage[-1][0] == pid:
                coverage[-1][1].append(piece)
            else:
                coverage.append((pid, [piece]))
        return coverage
