"""Index-join baselines (§6.2 and the CPU baselines of §7.1).

The baseline the paper compares against: a grid index over the polygons,
one probe + PIP tests per point, aggregation fused into the scan (no join
materialization).  Three execution modes mirror the paper's three
implementations:

* ``mode="gpu"`` — vectorized kernels over device-resident batches (the
  compute-shader implementation); NumPy vectorization stands in for the
  GPU's data parallelism.
* ``mode="cpu"`` — a faithful scalar single-threaded loop (the C++
  single-CPU baseline anchor of Figures 8/9).
* ``mode="multicore"`` — the scalar loop parallelized over point chunks
  through the :class:`~repro.exec.backend.ProcessBackend` (the OpenMP
  baseline): each worker keeps process-local accumulators that are
  merged at the end, exactly the paper's locking-avoidance strategy.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cache.session import QuerySession
from repro.core.aggregates import Aggregate
from repro.core.engine import SpatialAggregationEngine, grid_pip_aggregate
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.exec.backend import ProcessBackend
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet
from repro.geometry.predicates import point_in_polygon
from repro.index.grid import GridIndex
from repro.obs import trace
from repro.types import ExecutionStats


def _scalar_range(
    grid: GridIndex,
    polygons: PolygonSet,
    xs: np.ndarray,
    ys: np.ndarray,
    weights: np.ndarray | None,
    start: int,
    end: int,
) -> tuple[np.ndarray, int]:
    """Scalar JoinPoint loop over one chunk of points (worker side).

    Inputs arrive through fork copy-on-write memory (the tasks are
    closures), so nothing is pickled on the way in; only the per-chunk
    accumulator travels back.
    """
    local = np.zeros(len(polygons), dtype=np.float64)
    pip_tests = 0
    for i in range(start, end):
        x = float(xs[i])
        y = float(ys[i])
        for pid in grid.candidates_of_point(x, y):
            pid = int(pid)
            pip_tests += 1
            if point_in_polygon(x, y, polygons[pid].rings):
                local[pid] += 1.0 if weights is None else float(weights[i])
    return local, pip_tests


class IndexJoin(SpatialAggregationEngine):
    """Grid-index + PIP join with fused aggregation."""

    def __init__(
        self,
        mode: str = "gpu",
        device: GPUDevice | None = None,
        grid_resolution: int = 1024,
        workers: int | None = None,
        grid_assignment: str = "mbr",
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__(device, session=session, config=config)
        if mode not in ("gpu", "cpu", "multicore"):
            raise QueryError(f"unknown IndexJoin mode {mode!r}")
        self.mode = mode
        self.grid_resolution = grid_resolution
        self.grid_assignment = grid_assignment
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.name = f"index-join-{mode}"
        #: Multicore mode's fan-out vehicle, owned by the engine so a
        #: second query reuses it (per-dispatch forks inherit the
        #: parent's resident arrays copy-on-write) instead of
        #: constructing a fresh backend per batch.
        self._fanout_backend = (
            ProcessBackend(workers=self.workers) if mode == "multicore" else None
        )

    # ------------------------------------------------------------------
    def prepared_spec(self) -> tuple:
        """The render-spec part of this engine's artifact cache key."""
        return ("grid", self.grid_resolution, self.grid_assignment)

    def _build_grid(self, polygons: PolygonSet, stats: ExecutionStats) -> GridIndex:
        """The polygon grid, reused across queries (and, with a store,
        across processes) via the session."""
        with trace.span("prepare", polygons=len(polygons)):
            prepared = self._prepared_state(
                polygons, self.prepared_spec(), stats
            )
            return prepared.ensure_grid(
                polygons, self.grid_resolution, self.grid_assignment, stats
            )

    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        grid = self._build_grid(polygons, stats)
        # The index join renders no tiles; it still reports the execution
        # environment uniformly so every engine's stats are comparable.
        # Multicore mode's fork pool IS its execution vehicle, so the
        # report reflects that rather than the (unused) tile backend.
        self._record_execution_env(stats, 1)
        if self.mode == "multicore":
            stats.extra["backend"] = "process"
            stats.extra["workers"] = self.workers
        accumulators = self._new_accumulators(polygons, aggregate)
        columns = self.required_columns(aggregate, filters)
        for batch in self._batches(points, columns, stats):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            # The grid probe + PIP join *is* the whole point pass here;
            # multicore fans chunks out concurrently, so its child
            # durations may overlap (span-containment exemption).
            with trace.span("pip-join", mode=self.mode,
                            concurrent=self.mode == "multicore"):
                if self.mode == "gpu":
                    grid_pip_aggregate(xs, ys, attrs, grid, polygons,
                                       aggregate, accumulators, stats)
                elif self.mode == "cpu":
                    self._scalar_join(xs, ys, attrs, grid, polygons,
                                      aggregate, accumulators, stats)
                else:
                    self._parallel_join(xs, ys, attrs, grid, polygons,
                                        aggregate, accumulators, stats)
            stats.processing_s += time.perf_counter() - start
        return aggregate.finalize(accumulators), accumulators

    # ------------------------------------------------------------------
    # Single-CPU scalar loop
    # ------------------------------------------------------------------
    @staticmethod
    def _scalar_join(
        xs: np.ndarray,
        ys: np.ndarray,
        attrs: dict[str, np.ndarray],
        grid: GridIndex,
        polygons: PolygonSet,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        channel_cols = {
            ch: (attrs[col] if col is not None else None)
            for ch, col in aggregate.channels.items()
        }
        pip_tests = 0
        for i in range(len(xs)):
            x = float(xs[i])
            y = float(ys[i])
            for pid in grid.candidates_of_point(x, y):
                pid = int(pid)
                pip_tests += 1
                if not point_in_polygon(x, y, polygons[pid].rings):
                    continue
                for ch, col in channel_cols.items():
                    value = 1.0 if col is None else float(col[i])
                    if aggregate.blend == "add":
                        accumulators[ch][pid] += value
                    elif aggregate.blend == "min":
                        # np.minimum, not Python min: a NaN value must
                        # poison the slot exactly as it does in the
                        # vectorized paths (Python min would keep the
                        # accumulator and silently drop the NaN).
                        accumulators[ch][pid] = float(
                            np.minimum(accumulators[ch][pid], value)
                        )
                    else:
                        accumulators[ch][pid] = float(
                            np.maximum(accumulators[ch][pid], value)
                        )
        stats.pip_tests += pip_tests

    # ------------------------------------------------------------------
    # Multi-core scalar loop (OpenMP stand-in)
    # ------------------------------------------------------------------
    def _parallel_join(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        attrs: dict[str, np.ndarray],
        grid: GridIndex,
        polygons: PolygonSet,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        if aggregate.blend != "add" or len(aggregate.channels) != 1:
            # The parallel scalar path supports the count/sum kernels the
            # figures need; richer aggregates fall back to single-core.
            self._scalar_join(xs, ys, attrs, grid, polygons, aggregate,
                              accumulators, stats)
            return
        (channel, col), = aggregate.channels.items()
        weights = attrs[col] if col is not None else None
        n = len(xs)
        if n == 0:
            return
        chunk = -(-n // self.workers)
        ranges = [(s, min(s + chunk, n)) for s in range(0, n, chunk)]

        partials = self._fanout_backend.run_tasks(
            [
                (lambda start=start, end=end: _scalar_range(
                    grid, polygons, xs, ys, weights, start, end
                ))
                for start, end in ranges
            ]
        )
        stats.extra["pool"] = self._fanout_backend.last_pool_event
        # Chunk partials merge in range order, like the tile merge.
        for local, pip_tests in partials:
            accumulators[channel] += local
            stats.pip_tests += pip_tests

    def close(self) -> None:
        """Release both the tile backend and the multicore fan-out pool."""
        super().close()
        if self._fanout_backend is not None:
            self._fanout_backend.close()
