"""The paper's contribution: raster-join engines and baselines.

Four engines answer the same query — ``SELECT AGG(a) FROM P, R WHERE P.loc
INSIDE R.geometry [AND filters] GROUP BY R.id``:

* :class:`~repro.core.bounded.BoundedRasterJoin` — §4.1/§4.2, approximate
  with an ε Hausdorff bound, no PIP tests at all;
* :class:`~repro.core.accurate.AccurateRasterJoin` — §4.3, exact, PIP tests
  only for points on boundary pixels;
* :class:`~repro.core.index_join.IndexJoin` — §6.2 baseline, grid probe +
  PIP for every point, fused with aggregation (GPU-vectorized, or scalar
  single-CPU / multiprocessing multi-CPU);
* :class:`~repro.core.materializing.MaterializingJoin` — the Zhang-style
  comparator of Table 2, which materializes the join before aggregating.
"""

from repro.core.aggregates import Aggregate, Average, Count, Max, Min, Sum
from repro.core.multi import MultiAggregate
from repro.core.filters import Filter, FilterSet
from repro.core.engine import SpatialAggregationEngine
from repro.core.bounded import BoundedRasterJoin
from repro.core.accurate import AccurateRasterJoin
from repro.core.index_join import IndexJoin
from repro.core.materializing import MaterializingJoin
from repro.core.optimizer import RasterJoinOptimizer

__all__ = [
    "Aggregate",
    "Count",
    "Sum",
    "Average",
    "Min",
    "Max",
    "Filter",
    "FilterSet",
    "SpatialAggregationEngine",
    "BoundedRasterJoin",
    "AccurateRasterJoin",
    "IndexJoin",
    "MaterializingJoin",
    "MultiAggregate",
    "RasterJoinOptimizer",
]
