"""Multiple aggregates per query (the paper's §8 extension).

The paper computes one aggregate per query and notes the implementation
"can be extended to support multiple aggregate functions by having
multiple color attachments to the FBO", at the cost of extra memory
transfer.  :class:`MultiAggregate` is that extension: it fuses several
additive aggregates (count / sum / avg, in any mix) into one channel set,
de-duplicating shared channels — ``Count()`` and ``Average("fare")``
together need only ``count`` and ``sum:fare`` — so a single point pass and
a single polygon pass produce every answer.

Order-statistic aggregates (min/max) use a different blend equation and
cannot share a pass with additive ones; they are rejected up front.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregates import Aggregate
from repro.errors import QueryError


def _canonical_channel(column: str | None) -> str:
    """Stable channel name shared across sub-aggregates."""
    return "count" if column is None else f"sum:{column}"


class MultiAggregate(Aggregate):
    """Several additive aggregates evaluated in one rendering pass."""

    name = "multi"
    blend = "add"

    def __init__(self, aggregates: Sequence[Aggregate]) -> None:
        if not aggregates:
            raise QueryError("MultiAggregate needs at least one aggregate")
        for agg in aggregates:
            if agg.blend != "add":
                raise QueryError(
                    f"{type(agg).__name__} uses a {agg.blend!r} blend and "
                    "cannot share a pass with additive aggregates"
                )
            if isinstance(agg, MultiAggregate):
                raise QueryError("MultiAggregate cannot be nested")
        self.aggregates: tuple[Aggregate, ...] = tuple(aggregates)

        # Union of sub-aggregate channels under canonical names, plus the
        # per-sub-aggregate mapping back to its private channel names.
        self.channels = {}
        self._remaps: list[dict[str, str]] = []
        for agg in self.aggregates:
            remap = {}
            for private_name, column in agg.channels.items():
                canonical = _canonical_channel(column)
                self.channels[canonical] = column
                remap[private_name] = canonical
            self._remaps.append(remap)

    # ------------------------------------------------------------------
    @property
    def output_names(self) -> tuple[str, ...]:
        """One label per sub-aggregate, e.g. ``('count', 'avg(fare)')``."""
        names = []
        for agg in self.aggregates:
            column = getattr(agg, "column", None)
            names.append(f"{agg.name}({column})" if column else agg.name)
        return tuple(names)

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        """The engine-facing single result: the first sub-aggregate."""
        return self.finalize_all(reduced)[self.output_names[0]]

    def finalize_all(self, reduced: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Every sub-aggregate's values from the shared channels."""
        out: dict[str, np.ndarray] = {}
        for agg, remap, label in zip(
            self.aggregates, self._remaps, self.output_names
        ):
            private = {
                private_name: reduced[canonical]
                for private_name, canonical in remap.items()
            }
            out[label] = agg.finalize(private)
        return out

    def __repr__(self) -> str:
        return f"MultiAggregate({', '.join(self.output_names)})"
