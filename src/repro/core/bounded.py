"""Bounded raster join (§4.1–§4.2): the paper's headline algorithm.

The engine renders the points into a framebuffer whose pixels accumulate
partial aggregates, then rasterizes the triangulated polygons over the same
framebuffer, adding each covered pixel's partial aggregate into the owning
polygon's result slot.  No point-in-polygon test is ever executed; errors
are confined to pixels crossed by polygon outlines and are bounded in space
by ε (pixel diagonal), the Hausdorff guarantee of §4.2.

When the ε-implied resolution exceeds the device's framebuffer limit, the
canvas splits into tiles and the two passes run once per tile (Figure 5);
clipping guarantees every point-polygon pair is counted exactly once.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.aggregates import Aggregate
from repro.core.engine import SpatialAggregationEngine
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.geometry.polygon import PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_point import rasterize_points
from repro.graphics.raster_polygon import scanline_polygon_pixels
from repro.graphics.raster_triangle import triangle_coverage_mask
from repro.graphics.viewport import Canvas, Viewport
from repro.types import AggregationResult, ExecutionStats


class BoundedRasterJoin(SpatialAggregationEngine):
    """Approximate raster join with an ε-bounded spatial error.

    Parameters
    ----------
    epsilon:
        Hausdorff bound in world units; the pixel diagonal never exceeds
        it.  Mutually exclusive with ``resolution``.
    resolution:
        Alternatively, the pixel count of the canvas's longer side (the
        "4k x 4k canvas" style of specification used for visualization).
    device:
        Simulated GPU; ``None`` runs without memory limits or transfer
        accounting.
    use_scanline:
        Use the whole-polygon scanline fast path for the polygon pass
        instead of per-triangle rasterization.  Results are identical
        (tested); this exists for the raster-path ablation.
    compute_bounds:
        Also derive per-polygon result intervals (§5) — adds a boundary
        analysis pass; see :mod:`repro.core.bounds`.
    """

    name = "bounded-raster"

    def __init__(
        self,
        epsilon: float | None = None,
        resolution: int | None = None,
        device: GPUDevice | None = None,
        use_scanline: bool = False,
        compute_bounds: bool = False,
    ) -> None:
        super().__init__(device)
        if (epsilon is None) == (resolution is None):
            raise QueryError("specify exactly one of epsilon= or resolution=")
        self.epsilon = epsilon
        self.resolution = resolution
        self.use_scanline = use_scanline
        self.compute_bounds = compute_bounds

    # ------------------------------------------------------------------
    def _make_canvas(self, polygons: PolygonSet) -> Canvas:
        """Canvas over the polygon-set extent (the paper's w x h box).

        The extent is padded by one pixel so points sitting exactly on the
        extent's max edges still land on the grid instead of being clipped.
        """
        extent = polygons.bbox
        if self.epsilon is not None:
            probe = Canvas.for_epsilon(extent, self.epsilon)
            pad = max(probe.pixel_width, probe.pixel_height)
            return Canvas.for_epsilon(extent.expanded(pad), self.epsilon)
        probe = Canvas.for_resolution(extent, self.resolution)
        pad = max(probe.pixel_width, probe.pixel_height)
        return Canvas.for_resolution(extent.expanded(pad), self.resolution)

    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        canvas = self._make_canvas(polygons)
        stats.extra["canvas"] = (canvas.width, canvas.height)
        stats.extra["pixel_diagonal"] = canvas.pixel_diagonal

        # Polygon preprocessing: triangulation (Table 1 cost).
        start = time.perf_counter()
        triangles: list[list[np.ndarray]] = [
            triangulate_polygon(p) for p in polygons
        ]
        stats.triangulation_s = time.perf_counter() - start

        columns = self.required_columns(aggregate, filters)
        accumulators = {
            ch: np.full(len(polygons), aggregate.identity(), dtype=np.float64)
            for ch in aggregate.channels
        }

        tiles = list(canvas.tiles(self.max_resolution))
        stats.extra["tiles"] = len(tiles)
        bounds_inputs = []
        for tile in tiles:
            fbo = self._point_pass(
                tile, points, columns, aggregate, filters, stats
            )
            self._polygon_pass(tile, fbo, polygons, triangles, aggregate,
                               accumulators, stats)
            stats.passes += 1
            if self.compute_bounds:
                bounds_inputs.append((tile, fbo))

        values = aggregate.finalize(accumulators)
        if self.compute_bounds:
            from repro.core.bounds import estimate_result_intervals

            start = time.perf_counter()
            self._intervals = estimate_result_intervals(
                bounds_inputs, polygons, triangles, values, aggregate
            )
            stats.extra["bounds_s"] = time.perf_counter() - start
        else:
            self._intervals = None
        return values, accumulators

    def execute(self, points, polygons, aggregate=None, filters=None) -> AggregationResult:
        result = super().execute(points, polygons, aggregate, filters)
        result.intervals = self._intervals
        return result

    def execute_stream(self, chunk_source, polygons, aggregate=None,
                       filters=None) -> AggregationResult:
        """Streamed execution sharing the polygon pass across chunks.

        Point chunks are rasterized into the tile's framebuffer one after
        another (each chunk still flows through the device-batching path),
        and the polygon pass runs once per tile — the structure the paper's
        disk-resident experiments rely on.
        """
        from repro.core.aggregates import Count
        from repro.core.filters import FilterSet
        from repro.types import AggregationResult, ExecutionStats

        aggregate = aggregate or Count()
        filter_set = FilterSet.coerce(filters)
        columns = self.required_columns(aggregate, filter_set)
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)

        canvas = self._make_canvas(polygons)
        stats.extra["canvas"] = (canvas.width, canvas.height)
        start = time.perf_counter()
        triangles = [triangulate_polygon(p) for p in polygons]
        stats.triangulation_s = time.perf_counter() - start

        accumulators = {
            ch: np.full(len(polygons), aggregate.identity(), dtype=np.float64)
            for ch in aggregate.channels
        }
        tiles = list(canvas.tiles(self.max_resolution))
        stats.extra["tiles"] = len(tiles)
        saw_chunk = False
        for tile in tiles:
            fbo = FrameBuffer.for_viewport(tile, channels=aggregate.channels)
            if aggregate.blend != "add":
                for name in aggregate.channels:
                    fbo.channel(name).fill(aggregate.identity())
            for chunk in chunk_source():
                saw_chunk = True
                self._stream_chunk_into(tile, fbo, chunk, columns, aggregate,
                                        filter_set, stats)
            self._polygon_pass(tile, fbo, polygons, triangles, aggregate,
                               accumulators, stats)
            stats.passes += 1
        if not saw_chunk:
            raise QueryError("chunk source produced no chunks")
        if stats.batches == 0:
            stats.batches = 1
        return AggregationResult(
            values=aggregate.finalize(accumulators),
            channels=accumulators,
            stats=stats,
        )

    def _stream_chunk_into(self, tile, fbo, chunk, columns, aggregate,
                           filters, stats) -> None:
        """Rasterize one streamed chunk into an existing tile FBO."""
        for batch in self._batches(chunk, columns, stats,
                                   reserved_bytes=fbo.nbytes):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            if aggregate.blend == "add":
                values = {
                    ch: (attrs[col] if col is not None else 1.0)
                    for ch, col in aggregate.channels.items()
                }
                rasterize_points(tile, fbo, xs, ys, values)
            else:
                ix, iy, inside = tile.pixel_of(xs, ys)
                ix, iy = ix[inside], iy[inside]
                for ch, col in aggregate.channels.items():
                    vals = attrs[col][inside]
                    channel = fbo.channel(ch)
                    if aggregate.blend == "min":
                        np.minimum.at(channel, (iy, ix), vals)
                    else:
                        np.maximum.at(channel, (iy, ix), vals)
            stats.processing_s += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Step I: draw points
    # ------------------------------------------------------------------
    def _point_pass(
        self,
        tile: Viewport,
        points: PointDataset | ResidentPointSet,
        columns: tuple[str, ...],
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> FrameBuffer:
        fbo = FrameBuffer.for_viewport(tile, channels=aggregate.channels)
        if aggregate.blend != "add":
            for name in aggregate.channels:
                fbo.channel(name).fill(aggregate.identity())
        for batch in self._batches(points, columns, stats,
                                   reserved_bytes=fbo.nbytes):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            if aggregate.blend == "add":
                values = {
                    ch: (attrs[col] if col is not None else 1.0)
                    for ch, col in aggregate.channels.items()
                }
                rasterize_points(tile, fbo, xs, ys, values)
            else:
                # min/max blend: scatter with the order-statistic ufunc.
                ix, iy, inside = tile.pixel_of(xs, ys)
                ix, iy = ix[inside], iy[inside]
                for ch, col in aggregate.channels.items():
                    vals = attrs[col][inside]
                    channel = fbo.channel(ch)
                    if aggregate.blend == "min":
                        np.minimum.at(channel, (iy, ix), vals)
                    else:
                        np.maximum.at(channel, (iy, ix), vals)
            stats.processing_s += time.perf_counter() - start
        return fbo

    # ------------------------------------------------------------------
    # Step II: draw polygons
    # ------------------------------------------------------------------
    def _polygon_pass(
        self,
        tile: Viewport,
        fbo: FrameBuffer,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> None:
        start = time.perf_counter()
        channels = {ch: fbo.channel(ch) for ch in aggregate.channels}
        for pid, polygon in enumerate(polygons):
            if not polygon.bbox.intersects(tile.bbox):
                continue  # clipped by the viewport
            if self.use_scanline:
                ix, iy = scanline_polygon_pixels(tile, polygon.rings)
                if len(ix) == 0:
                    continue
                for ch, channel in channels.items():
                    pixel_values = channel[iy, ix]
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(aggregate.reduce_pixels(pixel_values)),
                    )
            else:
                for tri in triangles[pid]:
                    x0, y0, mask = triangle_coverage_mask(tile, tri)
                    if mask.size == 0 or not mask.any():
                        continue
                    for ch, channel in channels.items():
                        window = channel[
                            y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]
                        ]
                        accumulators[ch][pid] = aggregate.combine(
                            np.asarray(accumulators[ch][pid]),
                            np.asarray(aggregate.reduce_pixels(window[mask])),
                        )
        stats.processing_s += time.perf_counter() - start
