"""Bounded raster join (§4.1–§4.2): the paper's headline algorithm.

The engine renders the points into a framebuffer whose pixels accumulate
partial aggregates, then rasterizes the triangulated polygons over the same
framebuffer, adding each covered pixel's partial aggregate into the owning
polygon's result slot.  No point-in-polygon test is ever executed; errors
are confined to pixels crossed by polygon outlines and are bounded in space
by ε (pixel diagonal), the Hausdorff guarantee of §4.2.

When the ε-implied resolution exceeds the device's framebuffer limit, the
canvas splits into tiles and the two passes run once per tile (Figure 5);
clipping guarantees every point-polygon pair is counted exactly once.

Canvas layout, triangulations, and per-polygon pixel coverage are carried
in a :class:`~repro.cache.prepared.PreparedPolygons` artifact shared by the
monolithic and streamed paths; attach a
:class:`~repro.cache.session.QuerySession` and repeated queries over the
same polygon set reuse them.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.cache.session import QuerySession
from repro.core.aggregates import Aggregate, Count
from repro.core.engine import SpatialAggregationEngine
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.exec.backend import TilePartial
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_point import rasterize_points
from repro.graphics.raster_polygon import scanline_polygon_pixels
from repro.graphics.raster_triangle import triangle_coverage_mask
from repro.graphics.viewport import Canvas, Viewport
from repro.obs import trace
from repro.types import AggregationResult, ExecutionStats


class BoundedRasterJoin(SpatialAggregationEngine):
    """Approximate raster join with an ε-bounded spatial error.

    Parameters
    ----------
    epsilon:
        Hausdorff bound in world units; the pixel diagonal never exceeds
        it.  Mutually exclusive with ``resolution``.
    resolution:
        Alternatively, the pixel count of the canvas's longer side (the
        "4k x 4k canvas" style of specification used for visualization).
    device:
        Simulated GPU; ``None`` runs without memory limits or transfer
        accounting.
    use_scanline:
        Use the whole-polygon scanline fast path for the polygon pass
        instead of per-triangle rasterization.  Results are identical
        (tested); this exists for the raster-path ablation.
    compute_bounds:
        Also derive per-polygon result intervals (§5) — adds a boundary
        analysis pass; see :mod:`repro.core.bounds`.
    session:
        Optional :class:`QuerySession` so repeated queries over the same
        polygon set reuse triangulations, canvas layout, and coverage.
    """

    name = "bounded-raster"

    def __init__(
        self,
        epsilon: float | None = None,
        resolution: int | None = None,
        device: GPUDevice | None = None,
        use_scanline: bool = False,
        compute_bounds: bool = False,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__(device, session=session, config=config)
        if (epsilon is None) == (resolution is None):
            raise QueryError("specify exactly one of epsilon= or resolution=")
        self.epsilon = epsilon
        self.resolution = resolution
        self.use_scanline = use_scanline
        self.compute_bounds = compute_bounds

    # ------------------------------------------------------------------
    # Prepared state
    # ------------------------------------------------------------------
    def _make_canvas(self, polygons: PolygonSet) -> Canvas:
        """Canvas over the polygon-set extent (the paper's w x h box).

        The extent is padded by one pixel so points sitting exactly on the
        extent's max edges still land on the grid instead of being clipped.
        """
        extent = polygons.bbox
        if self.epsilon is not None:
            probe = Canvas.for_epsilon(extent, self.epsilon)
            pad = max(probe.pixel_width, probe.pixel_height)
            return Canvas.for_epsilon(extent.expanded(pad), self.epsilon)
        probe = Canvas.for_resolution(extent, self.resolution)
        pad = max(probe.pixel_width, probe.pixel_height)
        return Canvas.for_resolution(extent.expanded(pad), self.resolution)

    def prepared_spec(self) -> tuple:
        """The render-spec part of this engine's artifact cache key.

        Everything besides geometry that prepared state depends on.  The
        optimizer probes sessions with this spec for cache-aware costing;
        it must stay in lockstep with what :meth:`_prepare` keys on.
        """
        return (
            "bounded",
            self.epsilon,
            self.resolution,
            self.max_resolution,
            self.use_scanline,
        )

    def _prepare(
        self, polygons: PolygonSet, stats: ExecutionStats
    ) -> PreparedPolygons:
        """Canvas layout and triangulations — built once per polygon set."""
        with trace.span("prepare", polygons=len(polygons)):
            prepared = self._prepared_state(
                polygons, self.prepared_spec(), stats
            )
            if prepared.canvas is None:
                prepared.canvas = self._make_canvas(polygons)
                prepared.tiles = list(
                    prepared.canvas.tiles(self.max_resolution)
                )
            prepared.ensure_triangles(polygons, stats)
            # Columnar MBRs feed the batched builders' vectorized per-tile
            # bin pass; built in the parent so tile tasks only read them.
            prepared.ensure_mbr_arrays(polygons)
        stats.extra["canvas"] = (prepared.canvas.width, prepared.canvas.height)
        stats.extra["pixel_diagonal"] = prepared.canvas.pixel_diagonal
        return prepared

    # ------------------------------------------------------------------
    # Execution (monolithic and streamed share the per-tile stages)
    # ------------------------------------------------------------------
    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        prepared = self._prepare(polygons, stats)
        columns = self.required_columns(aggregate, filters)
        accumulators = self._new_accumulators(polygons, aggregate)
        bounds_inputs = [] if self.compute_bounds else None
        self._execute_tiles(
            prepared, lambda: iter((points,)), polygons, aggregate, filters,
            columns, accumulators, stats, bounds_inputs, points_hint=points,
        )
        values = aggregate.finalize(accumulators)
        if self.compute_bounds:
            from repro.core.bounds import estimate_result_intervals

            start = time.perf_counter()
            with trace.span("bounds"):
                self._intervals = estimate_result_intervals(
                    bounds_inputs, polygons, prepared.triangles, values,
                    aggregate,
                )
            stats.extra["bounds_s"] = time.perf_counter() - start
        else:
            self._intervals = None
        return values, accumulators

    def execute(self, points, polygons, aggregate=None, filters=None) -> AggregationResult:
        result = super().execute(points, polygons, aggregate, filters)
        result.intervals = self._intervals
        return result

    def execute_stream(self, chunk_source, polygons, aggregate=None,
                       filters=None) -> AggregationResult:
        """Streamed execution sharing the polygon pass across chunks.

        Point chunks are rasterized into the tile's framebuffer one after
        another (each chunk still flows through the device-batching path),
        and the polygon pass runs once per tile — the structure the paper's
        disk-resident experiments rely on.  With a parallel backend, tile
        workers invoke (and iterate) ``chunk_source`` concurrently — each
        call must return an independent iterator (see
        :meth:`SpatialAggregationEngine.execute_stream`).
        """
        aggregate = aggregate or Count()
        filter_set = FilterSet.coerce(filters)
        columns = self.required_columns(aggregate, filter_set)
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)
        with trace.query_scope(self.name) as root:
            prepared = self._prepare(polygons, stats)
            accumulators = self._new_accumulators(polygons, aggregate)
            saw_chunk = self._execute_tiles(
                prepared, chunk_source, polygons, aggregate, filter_set,
                columns, accumulators, stats, None,
            )
            if not saw_chunk:
                raise QueryError("chunk source produced no chunks")
            if stats.batches == 0:
                stats.batches = 1
            if root is not None:
                root.attrs.update(stats.as_span_attrs())
        self._checkpoint_session()
        return AggregationResult(
            values=aggregate.finalize(accumulators),
            channels=accumulators,
            stats=stats,
            trace=root,
        )

    def _execute_tiles(
        self,
        prepared: PreparedPolygons,
        source: Callable[[], Iterator],
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        columns: tuple[str, ...],
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
        bounds_inputs: list | None,
        points_hint: PointDataset | ResidentPointSet | None = None,
    ) -> bool:
        """Point pass then polygon pass per tile; ``source()`` yields chunks.

        Tiles are dispatched through the configured execution backend and
        their partials merged in tile-index order, so serial, thread, and
        process execution produce bit-identical results (each task folds
        its own accumulators from the blend identity).
        """
        tiles = prepared.tiles
        self._record_execution_env(stats, len(tiles))
        fbo_bytes = self._max_fbo_bytes(tiles, aggregate, np.float32)
        parallelism = self._tile_concurrency(points_hint, columns, fbo_bytes)
        retain = self.session is not None
        want_fbos = bounds_inputs is not None
        # Partitioned point pass: the parent scans the source once and
        # buckets points per tile (bit-identical to the full scan — see
        # repro.exec.partition); tiles otherwise re-iterate the source.
        partitioned = self._partition_tile_chunks(
            prepared, source, aggregate, columns, np.float32, stats,
            points_hint=points_hint,
        )
        units_mode = retain and prepared.units is not None
        # Captured before dispatch: worker threads and forked children
        # have no ambient tracer, so each tile task records into its own
        # (shipped home via TilePartial.span).
        tracing = trace.active() is not None

        def run_tile(tile_idx: int, tile: Viewport) -> TilePartial:
            with trace.tile_scope(tracing, tile=tile_idx) as tile_span:
                tile_stats = ExecutionStats(
                    engine=self.name, batches=0, passes=0
                )
                partial_acc = self._new_accumulators(polygons, aggregate)
                fbo = self._tile_framebuffer(tile, aggregate)
                saw_points = False
                chunks = (
                    source() if partitioned is None
                    else partitioned[0][tile_idx]
                )
                with trace.span("point-pass"):
                    for chunk in chunks:
                        saw_points = True
                        self._rasterize_chunk(
                            tile, fbo, chunk, columns, aggregate, filters,
                            tile_stats,
                        )
                with trace.span("polygon-pass"):
                    built_coverage, built_unit_coverage = self._polygon_pass(
                        tile_idx, tile, prepared, fbo, polygons, aggregate,
                        partial_acc, tile_stats, units_mode,
                    )
                tile_stats.passes = 1
                return TilePartial(
                    tile_idx, partial_acc, tile_stats, saw_points=saw_points,
                    coverage=built_coverage if retain else None,
                    unit_coverage=built_unit_coverage if retain else None,
                    payload=(tile, fbo) if want_fbos else None,
                    span=tile_span,
                )

        with trace.span("tiles", concurrent=self.backend.workers > 1):
            partials = self._dispatch_tiles(tiles, run_tile, parallelism,
                                            stats)
            if bounds_inputs is not None:
                bounds_inputs.extend(p.payload for p in partials)
            saw = self._merge_tile_partials(
                partials, prepared, aggregate, accumulators, stats
            )
        return saw or (partitioned is not None and partitioned[1])

    # ------------------------------------------------------------------
    # Step I: draw points
    # ------------------------------------------------------------------
    def _rasterize_chunk(
        self,
        tile: Viewport,
        fbo: FrameBuffer,
        points: PointDataset | ResidentPointSet,
        columns: tuple[str, ...],
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> None:
        """Rasterize one point chunk into the tile's framebuffer."""
        for batch in self._batches(points, columns, stats,
                                   reserved_bytes=fbo.nbytes):
            start = time.perf_counter()
            xs, ys, attrs = self._apply_filters(batch, filters, stats)
            if aggregate.blend == "add":
                values = {
                    ch: (attrs[col] if col is not None else 1.0)
                    for ch, col in aggregate.channels.items()
                }
                rasterize_points(tile, fbo, xs, ys, values)
            else:
                # min/max blend: scatter with the order-statistic ufunc.
                ix, iy, inside = tile.pixel_of(xs, ys)
                ix, iy = ix[inside], iy[inside]
                for ch, col in aggregate.channels.items():
                    vals = attrs[col][inside]
                    channel = fbo.channel(ch)
                    if aggregate.blend == "min":
                        np.minimum.at(channel, (iy, ix), vals)
                    else:
                        np.maximum.at(channel, (iy, ix), vals)
            stats.processing_s += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Step II: draw polygons
    # ------------------------------------------------------------------
    def _polygon_pass(
        self,
        tile_idx: int,
        tile: Viewport,
        prepared: PreparedPolygons,
        fbo: FrameBuffer,
        polygons: PolygonSet,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
        units_mode: bool = False,
    ) -> tuple[list | None, dict | None]:
        """Reduce each polygon's covered pixels into its result slot.

        Coverage (which pixels each polygon owns on this tile) depends only
        on the prepared geometry, so it is rasterized once per artifact and
        replayed afterwards; per query only the gather + reduction runs.
        Freshly built coverage — composed plus the per-polygon raw pieces
        — is returned for the caller to install into the artifact (tile
        tasks never mutate shared prepared state — under the process
        backend the mutation would be lost in the fork).  Under
        ``units_mode`` only polygons whose unit lacks this tile are
        rasterized; with no boundary mask to exclude, composition simply
        concatenates the per-polygon pieces in polygon order, exactly the
        order the direct build emits.
        """
        start = time.perf_counter()
        channels = {ch: fbo.channel(ch) for ch in aggregate.channels}
        batched = self._batch_raster and not self.use_scanline
        if self.session is None:
            if batched:
                # One batched raster pass; the fragments arrive grouped
                # per polygon in triangulation order and the index
                # gather reads the same values in the same row-major
                # order as the scalar window gather — bit-identical.
                raw = self._batched_unit_coverage(
                    tile, prepared, polygons, prepared.triangles,
                    range(len(polygons)),
                )
                for pid in range(len(polygons)):
                    for piece_iy, piece_ix in raw[pid]:
                        for ch, channel in channels.items():
                            accumulators[ch][pid] = aggregate.combine(
                                np.asarray(accumulators[ch][pid]),
                                np.asarray(aggregate.reduce_pixels(
                                    channel[piece_iy, piece_ix]
                                )),
                            )
            else:
                # No cache to warm: gather each piece directly.  The
                # boolean window gather visits pixels in the same
                # row-major order as the replayed index arrays, so both
                # paths are bit-identical.
                for pid, piece in self._coverage_pieces(tile, polygons,
                                                        prepared.triangles):
                    for ch, channel in channels.items():
                        accumulators[ch][pid] = aggregate.combine(
                            np.asarray(accumulators[ch][pid]),
                            np.asarray(
                                aggregate.reduce_pixels(
                                    self._gather_piece(channel, piece)
                                )
                            ),
                        )
            elapsed = time.perf_counter() - start
            stats.processing_s += elapsed
            stats.polygon_pass_s += elapsed
            return None, None
        built = None
        built_units = None
        coverage = prepared.coverage.get(tile_idx)
        if coverage is None:
            if units_mode:
                if batched:
                    built_units = self._batched_unit_coverage(
                        tile, prepared, polygons, prepared.triangles,
                        prepared.missing_coverage_pids(tile_idx),
                    )
                else:
                    built_units = {
                        pid: self._unit_coverage(
                            tile, polygons[pid], prepared.triangles[pid]
                        )
                        for pid in prepared.missing_coverage_pids(tile_idx)
                    }
                coverage = built = prepared.compose_coverage(
                    tile_idx, None, built_units
                )
            elif batched:
                raw = self._batched_unit_coverage(
                    tile, prepared, polygons, prepared.triangles,
                    range(len(polygons)),
                )
                coverage = built = [
                    (pid, raw[pid])
                    for pid in range(len(polygons)) if raw[pid]
                ]
            else:
                coverage = built = self._build_coverage(
                    tile, polygons, prepared.triangles
                )
        for pid, pieces in coverage:
            for piece_iy, piece_ix in pieces:
                for ch, channel in channels.items():
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(
                            aggregate.reduce_pixels(channel[piece_iy, piece_ix])
                        ),
                    )
        elapsed = time.perf_counter() - start
        stats.processing_s += elapsed
        stats.polygon_pass_s += elapsed
        return built, built_units

    def _unit_coverage(
        self,
        tile: Viewport,
        polygon,
        triangles: Sequence[np.ndarray],
    ) -> list:
        """One polygon's coverage pieces on this tile.

        The per-polygon slice of :meth:`_coverage_pieces`, already in
        the engine-consumed ``(iy, ix)`` form — the bounded join has no
        boundary exclusion, so raw and composed pieces are the same
        arrays.
        """
        pieces: list = []
        if polygon.bbox.intersects(tile.bbox):
            if self.use_scanline:
                ix, iy = scanline_polygon_pixels(tile, polygon.rings)
                if len(ix):
                    pieces.append((iy, ix))
            else:
                for tri in triangles:
                    x0, y0, mask = triangle_coverage_mask(tile, tri)
                    if mask.size == 0 or not mask.any():
                        continue
                    ky, kx = np.nonzero(mask)
                    pieces.append((ky + y0, kx + x0))
        return pieces

    def _coverage_pieces(
        self,
        tile: Viewport,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
    ):
        """Yield (pid, piece) in rasterization order.

        The single source of the polygon-pass traversal: ``piece`` is
        ``(iy, ix)`` index arrays on the scanline path or an
        ``(x0, y0, mask)`` window on the triangle path, consumed via
        :meth:`_gather_piece` or converted once by :meth:`_build_coverage`.
        """
        for pid, polygon in enumerate(polygons):
            if not polygon.bbox.intersects(tile.bbox):
                continue  # clipped by the viewport
            if self.use_scanline:
                ix, iy = scanline_polygon_pixels(tile, polygon.rings)
                if len(ix):
                    yield pid, (iy, ix)
            else:
                for tri in triangles[pid]:
                    x0, y0, mask = triangle_coverage_mask(tile, tri)
                    if mask.size == 0 or not mask.any():
                        continue
                    yield pid, (x0, y0, mask)

    @staticmethod
    def _gather_piece(channel: np.ndarray, piece: tuple) -> np.ndarray:
        """Channel values of one coverage piece, in row-major pixel order."""
        if len(piece) == 2:
            iy, ix = piece
            return channel[iy, ix]
        x0, y0, mask = piece
        return channel[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]][mask]

    def _build_coverage(
        self,
        tile: Viewport,
        polygons: PolygonSet,
        triangles: Sequence[Sequence[np.ndarray]],
    ) -> list:
        """Per-polygon (iy, ix) covered-pixel arrays on this tile.

        Triangle path: one piece per rasterized triangle, in traversal
        order.  Scanline path: a single piece per polygon.  Either way the
        replayed reduction visits pixels exactly as the direct
        rasterization would, so results are bit-identical.
        """
        coverage: list = []
        for pid, piece in self._coverage_pieces(tile, polygons, triangles):
            if len(piece) == 3:
                x0, y0, mask = piece
                ky, kx = np.nonzero(mask)
                piece = (ky + y0, kx + x0)
            if coverage and coverage[-1][0] == pid:
                coverage[-1][1].append(piece)
            else:
                coverage.append((pid, [piece]))
        return coverage
