"""Shared engine machinery: batching, uploads, and the point-pass loop.

Every engine follows the same outer structure: decide which columns the
query needs (locations + filter columns + aggregate columns), split the
points into device-sized batches, move each batch to the device exactly
once (measured as transfer time), run the vertex-stage filter, and hand the
surviving points to an engine-specific kernel.  That loop lives here so the
four engines only differ in their kernels.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.cache.session import QuerySession
from repro.core.aggregates import Aggregate, Count
from repro.core.filters import Filter, FilterSet
from repro.data.dataset import PointDataset
from repro.device.batching import plan_batches, tile_parallelism
from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import QueryError
from repro.exec.backend import TilePartial
from repro.exec.config import EngineConfig
from repro.exec.partition import ResidentSubset, partition_chunk
from repro.exec.shm import ShmChunk
from repro.geometry.polygon import PolygonSet
from repro.graphics.fbo import FrameBuffer
from repro.obs import metrics, trace
from repro.types import AggregationResult, ExecutionStats


class _Batch:
    """One device-resident slice of the input points."""

    __slots__ = ("columns", "length", "transfer_s")

    def __init__(self, columns: dict[str, np.ndarray], length: int,
                 transfer_s: float) -> None:
        self.columns = columns
        self.length = length
        self.transfer_s = transfer_s

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class SpatialAggregationEngine(ABC):
    """Base class of all spatial-aggregation engines."""

    name = "abstract"

    def __init__(
        self,
        device: GPUDevice | None = None,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.device = device
        #: Execution configuration: which backend runs independent tile
        #: tasks and with how many workers, plus the optional artifact
        #: store location.  Results are bit-identical for every choice —
        #: this is purely a performance knob.
        self.config = config if config is not None else EngineConfig()
        self.backend = self.config.make_backend()
        # Resolved once here so a malformed $REPRO_PARTITION_POINTS
        # fails at construction (like the other env-driven flags), not
        # deep inside a query's tile fan-out.
        self._partition_points = self.config.partition_enabled()
        # Whether raster builders run through the batched whole-set layer
        # (repro.graphics.raster_batch) or the per-triangle loops; both
        # produce bit-identical prepared state.
        self._batch_raster = self.config.batch_raster_enabled()
        if session is None:
            # An explicit store location on the config opts the engine
            # into cross-session persistence even without a caller-owned
            # session: prepared state flows through a private session
            # backed by that store (None unless config.store_dir is set
            # — see EngineConfig.default_session for the gate).
            session = self.config.default_session()
        #: Optional prepared-state cache shared across queries (and across
        #: engines).  Without one, every execution builds throwaway
        #: prepared state through the same preparation code — nothing is
        #: retained, and results are bit-identical either way.
        self.session = session

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate | None = None,
        filters: FilterSet | Sequence[Filter] | None = None,
    ) -> AggregationResult:
        """Run ``SELECT AGG(...) ... GROUP BY polygon`` and return results.

        ``points`` may be a host dataset (uploaded in batches, transfer
        timed) or a :class:`ResidentPointSet` already pinned on the device
        (the in-memory scenario: zero transfer).
        """
        aggregate = aggregate or Count()
        filter_set = FilterSet.coerce(filters)
        self._validate_columns(points, aggregate, filter_set)
        stats = ExecutionStats(engine=self.name, batches=0, passes=0)
        with trace.query_scope(self.name) as root:
            values, channels = self._run(
                points, polygons, aggregate, filter_set, stats
            )
            if stats.passes == 0:
                stats.passes = 1
            if stats.batches == 0:
                stats.batches = 1
            if root is not None:
                # The stats ↔ span bridge, stamped before the scope
                # closes so the JSONL sink sees the same §7.1 breakdown
                # as the returned stats object.
                root.attrs.update(stats.as_span_attrs())
        self._checkpoint_session()
        return AggregationResult(
            values=values, channels=channels, stats=stats, trace=root
        )

    def execute_stream(
        self,
        chunk_source,
        polygons: PolygonSet,
        aggregate: Aggregate | None = None,
        filters: FilterSet | Sequence[Filter] | None = None,
    ) -> AggregationResult:
        """Run the query over streamed point chunks (disk-resident data).

        ``chunk_source`` is a zero-argument callable returning an iterator
        of :class:`PointDataset` chunks (e.g. a column-store scan); engines
        that render in multiple tiles may invoke it once per tile — and,
        under a parallel execution backend, from several tile workers *at
        the same time*.  Every call must therefore return an independent
        iterator; iterators must not share mutable reader state (one
        seekable file handle, one cursor) across calls.  The generic
        implementation executes the query per chunk and merges the
        distributive channels — correct for any engine, though raster
        engines override it to share the polygon pass across chunks.
        """
        aggregate = aggregate or Count()
        merged_channels: dict[str, np.ndarray] | None = None
        merged_stats = ExecutionStats(engine=self.name, batches=0, passes=0)
        with trace.query_scope(self.name) as root:
            for chunk in chunk_source():
                result = self.execute(chunk, polygons, aggregate, filters)
                if merged_channels is None:
                    merged_channels = dict(result.channels)
                else:
                    for name, values in result.channels.items():
                        merged_channels[name] = aggregate.combine(
                            merged_channels[name], values
                        )
                merged_stats.merge(result.stats)
                # Environment facts (tile count, worker count) describe the
                # execution, they don't accumulate — the type-based extra
                # merge sums ints, so restore last-writer semantics here.
                for key in ("tiles", "workers"):
                    if key in result.stats.extra:
                        merged_stats.extra[key] = result.stats.extra[key]
            if merged_channels is None:
                raise QueryError("chunk source produced no chunks")
            if root is not None:
                root.attrs.update(merged_stats.as_span_attrs())
        return AggregationResult(
            values=aggregate.finalize(merged_channels),
            channels=merged_channels,
            stats=merged_stats,
            trace=root,
        )

    # ------------------------------------------------------------------
    # Engine-specific
    # ------------------------------------------------------------------
    @abstractmethod
    def _run(
        self,
        points: PointDataset | ResidentPointSet,
        polygons: PolygonSet,
        aggregate: Aggregate,
        filters: FilterSet,
        stats: ExecutionStats,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Produce (final values, reduced channel arrays)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _prepared_state(
        self,
        polygons: PolygonSet,
        spec: tuple,
        stats: ExecutionStats,
    ) -> PreparedPolygons:
        """The prepared artifact for this query's polygons + render spec.

        With a session attached, the artifact is fetched from (or inserted
        into) the cache and the hit/miss is recorded in ``stats``; without
        one, a fresh throwaway artifact is returned so both paths run the
        same preparation code.

        ``prepared_hits``/``prepared_misses`` describe the *in-memory*
        cache; a disk-tier hit therefore counts as a memory miss plus a
        ``prepared_store_hits`` increment, so the memory counters read
        identically whether or not a store is attached.
        """
        if self.session is None:
            return PreparedPolygons()
        prepared, source = self.session.prepared_for(polygons, spec)
        if source == "memory":
            stats.prepared_hits += 1
            stats.extra["prepared"] = "hit"
        elif source == "store":
            stats.prepared_misses += 1
            stats.prepared_store_hits += 1
            stats.extra["prepared"] = "store-hit"
        elif source == "delta":
            # An edited polygon set derived from a warm sibling: only the
            # changed/added polygons' artifacts rebuild this execution.
            stats.prepared_misses += 1
            stats.prepared_delta_hits += 1
            stats.extra["prepared"] = "delta"
            stats.extra["polygons_rebuilt"] = prepared.rebuilt_polygons
        else:
            stats.prepared_misses += 1
            stats.extra["prepared"] = "miss"
            if prepared.units is not None:
                stats.extra["polygons_rebuilt"] = len(prepared.units)
        return prepared

    @staticmethod
    def _tile_pid_mask(
        tile, prepared: PreparedPolygons, polygons: PolygonSet
    ) -> np.ndarray:
        """Vectorized bin pass: which polygons' boxes touch this tile.

        One boolean per polygon over the prepared columnar MBRs —
        the same inclusive ``bbox.intersects`` gate the per-polygon
        loops apply, evaluated for the whole set at once.  Falls back
        to building local columnar arrays when the artifact does not
        carry them (never mutating shared prepared state inside a tile
        task).
        """
        from repro.graphics.raster_batch import bin_polygons_to_tile

        mbrs = prepared.mbr_arrays
        if mbrs is None:
            boxes = [p.bbox for p in polygons]
            mbrs = (
                np.asarray([b.xmin for b in boxes]),
                np.asarray([b.xmax for b in boxes]),
                np.asarray([b.ymin for b in boxes]),
                np.asarray([b.ymax for b in boxes]),
            )
        return bin_polygons_to_tile(tile, mbrs)

    def _batched_unit_coverage(
        self,
        tile,
        prepared: PreparedPolygons,
        polygons: PolygonSet,
        triangles,
        pids,
    ) -> dict[int, list]:
        """Raw per-polygon coverage pieces via one batched raster pass.

        The batched replacement for looping ``_unit_coverage`` per pid:
        requested polygons that pass the tile bin gate contribute their
        triangles to one flat soup, and the fragments scatter back by
        the triangle → polygon id map into per-pid piece lists that are
        byte-identical to the per-triangle builders' output.  Gated-out
        pids map to empty lists, exactly as the scalar gate produces.
        """
        from repro.graphics.raster_batch import coverage_pieces_by_polygon

        hit = self._tile_pid_mask(tile, prepared, polygons)
        out: dict[int, list] = {pid: [] for pid in pids}
        out.update(coverage_pieces_by_polygon(
            tile, {pid: triangles[pid] for pid in pids if hit[pid]}
        ))
        return out

    def _checkpoint_session(self) -> None:
        """Make the session durable after an execution.

        Write-through persistence: freshly built prepared state reaches
        the session's artifact store (when one is attached) before the
        result is returned, and the in-memory byte budget is enforced.
        Runs outside the timed execution stats — durability is not query
        work.
        """
        if self.session is not None:
            self.session.checkpoint()

    def close(self) -> None:
        """Release the backend's long-lived worker pool (if any).

        Engines stay usable after ``close()`` — the next parallel
        dispatch simply respawns the pool lazily.  Unclosed pools are
        reclaimed at interpreter exit.
        """
        self.backend.close()

    def __enter__(self) -> "SpatialAggregationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Tile execution (backend dispatch + deterministic merge)
    # ------------------------------------------------------------------
    def _record_execution_env(self, stats: ExecutionStats, num_tiles: int) -> None:
        """Report tiling and backend facts uniformly across engines."""
        stats.extra["tiles"] = int(num_tiles)
        stats.extra["backend"] = self.backend.name
        stats.extra["workers"] = self.backend.workers

    def _tile_concurrency(
        self,
        points_hint: PointDataset | ResidentPointSet | None,
        columns: tuple[str, ...],
        fbo_bytes: int,
    ) -> int | None:
        """Cap on concurrently executing tile tasks, from the memory budget.

        Batch plans never depend on the worker count (identical batch
        boundaries are part of the determinism guarantee), so the device
        budget is enforced the other way around: limit how many tiles may
        hold a planned batch plus FBO headroom at once.  ``points_hint``
        is the monolithic input when known; streamed sources (unknown
        chunk sizes) fall back to one-at-a-time when a device is present.
        """
        if self.device is None:
            return None
        if isinstance(points_hint, ResidentPointSet):
            # Resident columns are shared, not re-uploaded: no per-tile
            # transfer footprint to budget.
            return self.backend.workers
        plan = None
        if points_hint is not None:
            plan = plan_batches(points_hint, columns, self.device, fbo_bytes)
        return tile_parallelism(
            self.device, fbo_bytes, plan, self.backend.workers
        )

    @staticmethod
    def _max_fbo_bytes(tiles: Sequence, aggregate: Aggregate, dtype) -> int:
        """Worst-case per-tile framebuffer footprint (budget headroom)."""
        biggest = max((t.width * t.height for t in tiles), default=0)
        return len(aggregate.channels) * np.dtype(dtype).itemsize * biggest

    @staticmethod
    def _tile_fbo_bytes(tile, aggregate: Aggregate, dtype) -> int:
        """One tile's framebuffer footprint — must equal the ``nbytes``
        of the :class:`FrameBuffer` its task will build, because the
        partition stage replicates each task's batch plan (which
        reserves exactly that many bytes)."""
        return (
            len(aggregate.channels)
            * np.dtype(dtype).itemsize
            * tile.width * tile.height
        )

    def _partition_tile_chunks(
        self,
        prepared: PreparedPolygons,
        source,
        aggregate: Aggregate,
        columns: tuple[str, ...],
        fbo_dtype,
        stats: ExecutionStats,
        points_hint: PointDataset | ResidentPointSet | None = None,
    ) -> tuple[list[list], bool] | None:
        """Partition the chunk source into per-tile sub-chunk lists.

        The tentpole of the partitioned point pass: the parent iterates
        ``source()`` exactly once, projects each chunk against the
        global canvas, and buckets points into batch-aligned per-tile
        sub-chunks (see :mod:`repro.exec.partition` for the
        bit-equality argument).  Tile tasks then scan only their own
        points instead of re-projecting the full input T times.

        With a session attached and a monolithic input
        (``points_hint``), the finished partition is cached in the
        session keyed by the point source and the canvas spec — a
        repeated query over the same points skips the scan entirely and
        reports ``extra["partition"] = "cached"``.  The partition
        depends only on the points and the canvas frame, never on the
        polygons, so a rezoning edit loop keeps hitting the cache.

        Returns ``(per_tile_chunks, saw_any_chunk)``, or ``None`` when
        partitioning is off or pointless (single-tile canvas) — the
        cheap no-op the single-tile path is guaranteed to keep.
        """
        tiles = prepared.tiles
        if len(tiles) <= 1 or not self._partition_points:
            stats.extra["partition"] = "off"
            return None
        with trace.span("partition", tiles=len(tiles)):
            return self._partition_tile_chunks_timed(
                prepared, source, aggregate, columns, fbo_dtype, stats,
                points_hint, tiles,
            )

    def _partition_tile_chunks_timed(
        self, prepared, source, aggregate, columns, fbo_dtype, stats,
        points_hint, tiles,
    ) -> tuple[list[list], bool] | None:
        start = time.perf_counter()
        fbo_bytes = [
            self._tile_fbo_bytes(tile, aggregate, fbo_dtype) for tile in tiles
        ]
        token = None
        if self.session is not None and points_hint is not None:
            canvas = prepared.canvas
            ext = canvas.extent
            # The device enters by *value* (its batch-planning inputs),
            # not identity: an id() could be reused after GC and would
            # validate a partition aligned to another device's batch
            # boundaries.
            device_token = None if self.device is None else (
                self.device.capacity_bytes, self.device.max_resolution,
            )
            token = (
                (ext.xmin, ext.ymin, ext.xmax, ext.ymax),
                canvas.width, canvas.height, self.max_resolution,
                columns, tuple(fbo_bytes), device_token,
            )
            cached = self.session.partition_lookup(points_hint, token)
            if cached is not None:
                per_tile, duplicates = cached
                stats.extra["partition"] = "cached"
                stats.extra["partition_duplicates"] = duplicates
                stats.partition_s += time.perf_counter() - start
                return per_tile, True
        per_tile: list[list] = [[] for _ in tiles]
        saw_chunk = False
        duplicates = 0
        for chunk in source():
            saw_chunk = True
            pieces, dupes = partition_chunk(
                chunk, prepared.canvas, tiles, self.max_resolution,
                columns, self.device, fbo_bytes,
            )
            duplicates += dupes
            for idx, subs in enumerate(pieces):
                per_tile[idx].extend(subs)
        if token is not None and saw_chunk:
            # The session may convert host sub-chunks to shared-memory
            # chunks as it stores them (its shm tier); consuming what it
            # stored means this very query already reads the shared
            # segments — and stays eligible for resident dispatch.
            per_tile = self.session.partition_store(
                points_hint, token, per_tile, duplicates
            )
        stats.extra["partition"] = "on"
        stats.extra["partition_duplicates"] = duplicates
        stats.partition_s += time.perf_counter() - start
        return per_tile, saw_chunk

    @staticmethod
    def _tile_framebuffer(tile, aggregate: Aggregate,
                          dtype=np.float32) -> FrameBuffer:
        """A tile's render target, cleared to the blend identity."""
        fbo = FrameBuffer.for_viewport(
            tile, channels=aggregate.channels, dtype=dtype
        )
        if aggregate.blend != "add":
            for name in aggregate.channels:
                fbo.channel(name).fill(aggregate.identity())
        return fbo

    def _dispatch_tiles(
        self,
        tiles: Sequence,
        tile_fn,
        parallelism: int | None = None,
        stats: ExecutionStats | None = None,
    ) -> list[TilePartial]:
        """Run ``tile_fn(tile_idx, tile)`` per tile; partials in tile order.

        Records how the dispatch executed (``extra["pool"]``: inline /
        created / reused / ephemeral / forked) so a trace shows whether
        the persistent pool was actually reused.
        """
        tasks = [
            (lambda idx=idx, tile=tile: tile_fn(idx, tile))
            for idx, tile in enumerate(tiles)
        ]
        partials = self.backend.run_tasks(tasks, parallelism=parallelism)
        if stats is not None and self.backend.last_pool_event is not None:
            stats.extra["pool"] = self.backend.last_pool_event
        return partials

    @staticmethod
    def _merge_tile_partials(
        partials: Sequence[TilePartial],
        prepared: PreparedPolygons,
        aggregate: Aggregate,
        accumulators: dict[str, np.ndarray],
        stats: ExecutionStats,
    ) -> bool:
        """Fold per-tile partials into the final result, in tile order.

        Partials arrive in tile-index order whatever order they finished
        in, and each one was folded from the blend identity, so this
        merge produces bit-identical accumulators for every backend and
        worker count.  Newly built prepared-state pieces (boundary masks,
        coverage) are installed here, on the caller's side of the process
        boundary, so the session warms even under the fork backend.
        """
        saw_points = False
        for partial in partials:
            saw_points = saw_points or partial.saw_points
            for name, arr in partial.accumulators.items():
                accumulators[name] = aggregate.combine(accumulators[name], arr)
            # stats.merge sums numeric extras (boundary_pixels et al.)
            # across tiles by the type-based rules in ExecutionStats.
            stats.merge(partial.stats)
            # Counter/histogram increments a worker process made come
            # home as a delta dict; folding them here (in tile order)
            # keeps the parent registry identical to what an in-process
            # backend would have recorded directly.
            if partial.metrics:
                metrics.REGISTRY.apply_delta(partial.metrics)
            # Shipped tile subtrees re-parent here, in tile-index order,
            # so the trace tree is deterministic across backends.
            trace.attach(partial.span)
            if partial.unit_boundary is not None:
                prepared.install_unit_boundary(
                    partial.tile_idx, partial.unit_boundary
                )
            if partial.unit_coverage is not None:
                prepared.install_unit_coverage(
                    partial.tile_idx, partial.unit_coverage
                )
            prepared.mark_composed(
                partial.tile_idx,
                boundary=partial.boundary_mask,
                coverage=partial.coverage,
            )
        return saw_points

    @staticmethod
    def _new_accumulators(
        polygons: PolygonSet, aggregate: Aggregate
    ) -> dict[str, np.ndarray]:
        """Per-polygon result slots initialized to the blend identity."""
        return {
            ch: np.full(len(polygons), aggregate.identity(), dtype=np.float64)
            for ch in aggregate.channels
        }

    @staticmethod
    def required_columns(aggregate: Aggregate, filters: FilterSet) -> tuple[str, ...]:
        """Columns the query touches: locations, filters, aggregate attrs."""
        names: list[str] = ["x", "y"]
        for col in filters.columns:
            if col not in names:
                names.append(col)
        for col in aggregate.columns:
            if col not in names:
                names.append(col)
        return tuple(names)

    def _validate_columns(
        self,
        points: PointDataset | ResidentPointSet,
        aggregate: Aggregate,
        filters: FilterSet,
    ) -> None:
        needed = self.required_columns(aggregate, filters)
        if isinstance(points, ResidentPointSet):
            missing = [c for c in needed if c not in points.column_names]
            if missing:
                raise QueryError(
                    f"resident point set lacks columns {missing}; "
                    f"preload with columns={needed}"
                )
        else:
            for col in needed:
                points.column(col)  # raises SchemaError when absent

    def _batches(
        self,
        points: PointDataset | ResidentPointSet,
        columns: tuple[str, ...],
        stats: ExecutionStats,
        reserved_bytes: int = 0,
    ) -> Iterator[_Batch]:
        """Yield device-resident batches, accounting transfer time.

        Resident point sets yield themselves as a single zero-cost batch.
        Host datasets are planned against the device capacity and each
        batch's columns are physically copied (and timed).  Device buffers
        are released as soon as a batch has been consumed, like the
        round-robin persistent buffers of the paper's implementation.
        """
        if isinstance(points, (ResidentPointSet, ResidentSubset, ShmChunk)):
            # Resident sets — and the per-tile subsets the partition
            # stage gathers from them — are already device memory: one
            # zero-cost batch, no planning.  Shared-memory chunks get
            # the same treatment in every process: they are
            # batch-aligned by construction (each partition sub-chunk
            # fits exactly one batch of the plan its tile task would
            # have used — repro.exec.partition, property 3), so the
            # single-batch grouping reproduces the host path's bits.
            stats.batches += 1
            yield _Batch(
                {c: points.column(c) for c in columns}, len(points), 0.0
            )
            return
        plan = plan_batches(points, columns, self.device, reserved_bytes)
        for start, end in plan.ranges():
            host_cols = {c: points.column(c)[start:end] for c in columns}
            if self.device is None:
                stats.batches += 1
                yield _Batch(host_cols, end - start, 0.0)
                continue
            buffers, seconds = self.device.upload_columns(host_cols)
            stats.transfer_s += seconds
            stats.bytes_transferred += sum(b.nbytes for b in buffers.values())
            stats.batches += 1
            try:
                yield _Batch(
                    {n: b.array for n, b in buffers.items()}, end - start, seconds
                )
            finally:
                for b in buffers.values():
                    b.free()

    @staticmethod
    def _apply_filters(
        batch: _Batch, filters: FilterSet, stats: ExecutionStats
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Vertex stage: evaluate constraints, discard failing points.

        Returns the surviving coordinates and attribute columns.
        """
        xs = batch.column("x")
        ys = batch.column("y")
        attrs = {
            n: arr for n, arr in batch.columns.items() if n not in ("x", "y")
        }
        stats.points_processed += batch.length
        if not filters:
            return xs, ys, attrs
        keep = filters.mask(batch.column, batch.length)
        stats.points_filtered_out += int(batch.length - np.count_nonzero(keep))
        if keep.all():
            return xs, ys, attrs
        return xs[keep], ys[keep], {n: a[keep] for n, a in attrs.items()}

    @property
    def max_resolution(self) -> int:
        """Largest FBO side the device supports."""
        from repro.device.memory import DEFAULT_MAX_RESOLUTION

        if self.device is not None:
            return self.device.max_resolution
        return DEFAULT_MAX_RESOLUTION


def timed(fn, *args, **kwargs):
    """Run ``fn`` returning (result, elapsed seconds)."""
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def grid_pip_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    attrs: dict[str, np.ndarray],
    grid,
    polygons: PolygonSet,
    aggregate: Aggregate,
    accumulators: dict[str, np.ndarray],
    stats: ExecutionStats,
) -> None:
    """The JoinPoint procedure, vectorized over polygons.

    Each point probes its grid cell and is PIP-tested against every
    candidate polygon — one test per point/candidate pair, exactly the work
    the paper counts.  The (point, polygon) candidate pairs are expanded
    from the CSR grid arrays in bulk, then grouped by polygon so each
    polygon runs one vectorized PIP call over all its candidate points —
    the SPMD batching a GPU compute shader would perform.  Aggregation is
    fused: matches update the result accumulators immediately, nothing is
    materialized beyond the candidate index arrays.
    """
    if len(xs) == 0:
        return
    cells = grid.cell_of_points(xs, ys)
    valid = cells >= 0
    cells = np.where(valid, cells, 0)
    counts = np.where(
        valid, grid.cell_start[cells + 1] - grid.cell_start[cells], 0
    )
    total = int(counts.sum())
    if total == 0:
        return
    stats.pip_tests += total
    # CSR expansion: candidate k of point i sits at
    # entries[cell_start[cell_i] + k].
    point_idx = np.repeat(np.arange(len(xs), dtype=np.int64), counts)
    first = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - first
    entry_pos = np.repeat(grid.cell_start[cells], counts) + within
    poly_ids = grid.entries[entry_pos]

    # Group candidate pairs by polygon: one vectorized PIP per polygon.
    order = np.argsort(poly_ids, kind="stable")
    poly_sorted = poly_ids[order]
    point_sorted = point_idx[order]
    group_bounds = np.flatnonzero(np.diff(poly_sorted)) + 1
    starts = np.concatenate([[0], group_bounds])
    ends = np.concatenate([group_bounds, [total]])

    channel_cols = {
        ch: (attrs[col] if col is not None else None)
        for ch, col in aggregate.channels.items()
    }
    for start, end in zip(starts, ends):
        pid = int(poly_sorted[start])
        idx = point_sorted[start:end]
        inside = polygons[pid].contains_points(xs[idx], ys[idx])
        matched = int(np.count_nonzero(inside))
        if matched == 0:
            continue
        for ch, col in channel_cols.items():
            if col is None:
                # Constant-1 channel: every matched point contributes one
                # 1.0, whatever the blend equation.
                if aggregate.blend == "add":
                    accumulators[ch][pid] += matched
                else:
                    ones = np.ones(matched, dtype=np.float64)
                    accumulators[ch][pid] = aggregate.combine(
                        np.asarray(accumulators[ch][pid]),
                        np.asarray(aggregate.reduce_pixels(ones)),
                    )
            else:
                vals = col[idx[inside]]
                if aggregate.blend == "add":
                    accumulators[ch][pid] += float(
                        np.sum(vals, dtype=np.float64)
                    )
                elif aggregate.blend == "min":
                    # np.minimum, not Python min: NaN must poison the
                    # merge exactly as it does in the raster path's
                    # np.minimum.at scatter and in reduce_pixels' np.min
                    # (Python min would silently keep the accumulator).
                    accumulators[ch][pid] = float(np.minimum(
                        accumulators[ch][pid], np.min(vals)
                    ))
                else:
                    accumulators[ch][pid] = float(np.maximum(
                        accumulators[ch][pid], np.max(vals)
                    ))
