"""Planner: validate a parsed statement and lower it onto an engine.

The planner owns a catalog of registered point tables
(:class:`~repro.data.dataset.PointDataset`) and region tables
(:class:`~repro.geometry.polygon.PolygonSet`).  Given a statement it checks
names and columns, builds the aggregate and filter objects, picks an engine
— the ε-aware optimizer choice when the statement carries a ``WITHIN``
bound, the accurate engine otherwise — and executes.

The planner owns a :class:`~repro.cache.session.QuerySession` (or accepts a
shared one) and attaches it to every engine it lowers onto, so repeated
statements over the same region table reuse triangulations, grid indexes,
and boundary masks instead of rebuilding them — the interactive
redraw-and-re-query loop the paper targets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.session import QuerySession
from repro.core.accurate import AccurateRasterJoin
from repro.core.aggregates import Aggregate, Average, Count, Max, Min, Sum
from repro.core.multi import MultiAggregate
from repro.core.bounded import BoundedRasterJoin
from repro.core.engine import SpatialAggregationEngine
from repro.core.filters import Filter, FilterSet
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice
from repro.errors import SqlError
from repro.exec.config import EngineConfig
from repro.geometry.polygon import PolygonSet
from repro.sql.ast import SelectStatement
from repro.sql.parser import parse
from repro.types import AggregationResult

_AGG_BUILDERS = {
    "COUNT": lambda col: Count(),
    "SUM": Sum,
    "AVG": Average,
    "MIN": Min,
    "MAX": Max,
}


class QueryPlanner:
    """Catalog + lowering for the SQL frontend."""

    def __init__(
        self,
        device: GPUDevice | None = None,
        session: QuerySession | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.device = device
        #: Execution configuration attached to every lowered engine, so a
        #: SQL deployment opts whole statements into parallel tile
        #: execution — and into artifact persistence — in one place.
        #: The backend is resolved *once* and pinned into the config as
        #: an instance: every statement this planner lowers shares one
        #: backend, so its persistent worker pool survives across
        #: statements instead of being respawned (and leaked) per query.
        config = config if config is not None else EngineConfig()
        self.config = config.with_pinned_backend()
        if session is None:
            # The planner-owned session picks up the artifact store from
            # the config (explicit ``store_dir``, via the shared
            # EngineConfig.default_session gate) or — unlike bare
            # engines, which stay cache-free without a session — from
            # the environment (``$REPRO_STORE_DIR``), because a SQL
            # server always owns a session anyway; either way a
            # restarted server answers its first repeated statement
            # warm.
            session = self.config.default_session()
        if session is None:
            store = self.config.make_store()
            session = QuerySession(store=store if store is not None else False)
        self.session = session
        self._points: dict[str, PointDataset] = {}
        self._regions: dict[str, PolygonSet] = {}
        #: Lazily-built optimizer for EXPLAIN ANALYZE predictions: one
        #: instance per planner, so the calibration probes run once and
        #: every explained statement reuses the fitted cost model.
        self._optimizer = None
        #: Lazily-built serving layer (repro.serve): one server per
        #: planner, sharing its session, backend, and catalog.
        self._server = None

    def optimizer(self):
        """The planner's calibrated cost optimizer (built on first use)."""
        if self._optimizer is None:
            from repro.core.optimizer import RasterJoinOptimizer

            self._optimizer = RasterJoinOptimizer(
                device=self.device, session=self.session, config=self.config,
            )
        return self._optimizer

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def register_points(self, name: str, dataset: PointDataset) -> None:
        if name in self._regions:
            raise SqlError(f"{name!r} is already a region table")
        self._points[name] = dataset
        # With the shared-memory data plane on, pin the table's columns
        # into /dev/shm at registration time: every statement (and every
        # resident worker) then maps the same segments instead of
        # re-pickling the source per dispatch.  A no-op when shm is off.
        if self.config.shm_enabled():
            self.session.shm_pin(dataset)

    def register_regions(self, name: str, polygons: PolygonSet) -> None:
        """Register (or replace) a region table.

        Re-registering a name with an *edited* polygon set is the SQL
        face of the incremental path: the planner keeps one shared
        :class:`QuerySession`, so the next statement over that table
        delta-derives from the previous zoning's prepared artifacts —
        only the changed polygons rebuild
        (``stats.extra["polygons_rebuilt"]``), and with a store attached
        the edit persists as a journal patch, not a full rewrite.  See
        ``docs/incremental_edits.md``.
        """
        if name in self._points:
            raise SqlError(f"{name!r} is already a point table")
        self._regions[name] = polygons

    # ------------------------------------------------------------------
    # Validation + lowering
    # ------------------------------------------------------------------
    def _resolve(
        self, stmt: SelectStatement
    ) -> tuple[SelectStatement, PointDataset, PolygonSet]:
        """Map the FROM tables onto the catalog, normalizing their order.

        Returns the (possibly table-swapped) statement so later validation
        sees the canonical point/region assignment.
        """
        if stmt.point_table not in self._points:
            # The FROM clause does not order the tables; try both ways.
            # dataclasses.replace keeps every other field (the SELECT
            # list, the EXPLAIN ANALYZE flag) intact through the swap.
            if (
                stmt.region_table in self._points
                and stmt.point_table in self._regions
            ):
                stmt = replace(
                    stmt,
                    point_table=stmt.region_table,
                    region_table=stmt.point_table,
                )
            else:
                raise SqlError(f"unknown point table {stmt.point_table!r}")
        if stmt.region_table not in self._regions:
            raise SqlError(f"unknown region table {stmt.region_table!r}")
        return stmt, self._points[stmt.point_table], self._regions[stmt.region_table]

    def _build_one_aggregate(
        self, stmt: SelectStatement, points: PointDataset, spec
    ) -> Aggregate:
        if spec.function == "COUNT" and spec.column is None:
            return Count()
        if spec.column is None:
            raise SqlError(f"{spec.function} needs a column argument")
        if spec.table is not None and spec.table != stmt.point_table:
            raise SqlError(
                f"aggregate column must come from the point table "
                f"{stmt.point_table!r}, not {spec.table!r}"
            )
        points.column(spec.column)  # raises SchemaError when missing
        return _AGG_BUILDERS[spec.function](spec.column)

    def _build_aggregate(self, stmt: SelectStatement, points: PointDataset) -> Aggregate:
        specs = stmt.select_list()
        built = [self._build_one_aggregate(stmt, points, s) for s in specs]
        if len(built) == 1:
            return built[0]
        # Multiple SELECT items: one fused rendering pass (§8 extension).
        return MultiAggregate(built)

    def _build_filters(self, stmt: SelectStatement, points: PointDataset) -> FilterSet:
        filters = []
        for cond in stmt.conditions:
            if cond.table is not None and cond.table != stmt.point_table:
                raise SqlError(
                    f"filter column {cond.table}.{cond.column} must come "
                    f"from the point table {stmt.point_table!r}"
                )
            points.column(cond.column)
            filters.append(Filter(cond.column, cond.op, cond.value))
        return FilterSet(filters)

    def _check_group_by(self, stmt: SelectStatement) -> None:
        table = stmt.group_by_table
        if table is not None and table != stmt.region_table:
            raise SqlError(
                f"GROUP BY must reference the region table "
                f"{stmt.region_table!r}, got {table!r}"
            )
        if stmt.group_by_column not in ("id", "name", None):
            raise SqlError(
                f"GROUP BY column must be the region id, got "
                f"{stmt.group_by_column!r}"
            )

    def plan(
        self, statement: str | SelectStatement
    ) -> tuple[SpatialAggregationEngine, PointDataset, PolygonSet, Aggregate, FilterSet]:
        """Validate and lower without executing (inspectable plan)."""
        stmt = parse(statement) if isinstance(statement, str) else statement
        stmt, points, regions = self._resolve(stmt)
        aggregate = self._build_aggregate(stmt, points)
        filters = self._build_filters(stmt, points)
        self._check_group_by(stmt)
        epsilon = stmt.spatial.epsilon
        if epsilon is not None:
            engine: SpatialAggregationEngine = BoundedRasterJoin(
                epsilon=epsilon, device=self.device, session=self.session,
                config=self.config,
            )
        else:
            engine = AccurateRasterJoin(
                device=self.device, session=self.session, config=self.config,
            )
        return engine, points, regions, aggregate, filters

    def execute(self, statement: str | SelectStatement) -> AggregationResult:
        """Parse, plan, and run a statement.

        An ``EXPLAIN ANALYZE`` statement still executes, but returns an
        :class:`~repro.sql.explain.ExplainResult` wrapping the
        aggregation result with the traced span tree and the optimizer's
        per-term predicted-vs-measured comparison.
        """
        stmt = parse(statement) if isinstance(statement, str) else statement
        engine, points, regions, aggregate, filters = self.plan(stmt)
        if stmt.explain_analyze:
            from repro.sql.explain import explain_analyze

            return explain_analyze(
                self.optimizer(), engine, points, regions, aggregate, filters,
                statement=stmt,
            )
        return engine.execute(points, regions, aggregate=aggregate, filters=filters)

    def server(self, config=None):
        """This planner's concurrent serving layer (built on first use).

        ``config`` (a :class:`~repro.serve.ServeConfig`) only takes
        effect on the call that creates the server; later calls return
        the existing instance.  The server shares the planner's session,
        pinned backend, and catalog, so served statements hit the same
        warm caches as :meth:`execute`.
        """
        if self._server is None:
            from repro.serve import Server

            self._server = Server(self, config)
        return self._server

    async def execute_async(self, statement, timeout: float | None = None):
        """Serve a statement through the concurrent layer (asyncio).

        Concurrent identical statements coalesce onto one execution and
        fusable overlapping statements share a point scan — see
        ``docs/serving.md``.  ``timeout`` bounds the wait (raising
        :class:`~repro.errors.QueryTimeoutError`), not the execution.
        """
        return await self.server().execute_async(statement, timeout=timeout)

    def prewarm(self, point_table: str, region_table: str) -> None:
        """Build the aggregate pyramid for a (points, regions) pairing.

        The explicit opt-in to the pyramid-warm path
        (``docs/aggregate_pyramid.md``): a dashboard calls this once
        after registering its tables, pays the one-off O(points)
        cell-sort here, and every later unfiltered Count/Sum/Avg/Min/Max
        statement whose regions share the frame answers polygon
        interiors from cached block partials.  Statements the pyramid
        cannot serve (filters, unsupported aggregates) silently keep the
        exact path, as does everything when ``$REPRO_PYRAMID=0``.
        """
        if point_table not in self._points:
            raise SqlError(f"unknown point table {point_table!r}")
        if region_table not in self._regions:
            raise SqlError(f"unknown region table {region_table!r}")
        engine = AccurateRasterJoin(
            device=self.device, session=self.session, config=self.config,
        )
        engine.build_pyramid(
            self._points[point_table], self._regions[region_table]
        )

    def close(self) -> None:
        """Release the serving layer and the shared backend's worker pool.

        The planner stays usable — the next statement respawns the pool
        lazily (and :meth:`server` a fresh server); unclosed pools are
        reclaimed at interpreter exit.
        """
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
        self.config.backend.close()

    def __enter__(self) -> "QueryPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
