"""Recursive-descent parser for the spatial-aggregation dialect.

Grammar (keywords case-insensitive)::

    statement   := ( EXPLAIN ANALYZE )?
                   SELECT aggregate FROM ident "," ident
                   WHERE predicate ( AND condition )*
                   GROUP BY column_ref
    aggregate   := COUNT "(" "*" ")"
                 | (SUM|AVG|MIN|MAX) "(" column_ref ")"
    predicate   := column_ref INSIDE column_ref ( WITHIN number )?
    condition   := column_ref op number
    column_ref  := ident ( "." ident )?
    op          := < | <= | > | >= | = | != | <>
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql.ast import (
    AggregateSpec,
    Condition,
    SelectStatement,
    SpatialPredicate,
)
from repro.sql.lexer import Token, tokenize

_AGG_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = f"{kind} {value!r}" if value else kind
            raise SqlError(
                f"expected {want} at position {tok.position}, "
                f"got {tok.kind} {tok.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------
    def column_ref(self) -> tuple[str | None, str]:
        first = self.expect("IDENT").value
        if self.accept("PUNCT", "."):
            second = self.expect("IDENT").value
            return first, second
        return None, first

    def aggregate(self) -> AggregateSpec:
        tok = self.peek()
        if tok.kind != "KEYWORD" or tok.value not in _AGG_KEYWORDS:
            raise SqlError(
                f"expected aggregate function at position {tok.position}"
            )
        func = self.advance().value
        self.expect("PUNCT", "(")
        if func == "COUNT" and self.accept("PUNCT", "*"):
            self.expect("PUNCT", ")")
            return AggregateSpec("COUNT", None, None)
        table, column = self.column_ref()
        self.expect("PUNCT", ")")
        return AggregateSpec(func, column, table)

    def spatial_predicate(self) -> SpatialPredicate:
        pt_table, pt_column = self.column_ref()
        self.expect("KEYWORD", "INSIDE")
        rg_table, rg_column = self.column_ref()
        epsilon = None
        if self.accept("KEYWORD", "WITHIN"):
            epsilon = float(self.expect("NUMBER").value)
            if epsilon <= 0:
                raise SqlError(f"WITHIN bound must be positive, got {epsilon}")
        if pt_table is None or rg_table is None:
            raise SqlError(
                "the INSIDE predicate needs qualified references "
                "(points.loc INSIDE regions.geometry)"
            )
        return SpatialPredicate(pt_table, pt_column, rg_table, rg_column, epsilon)

    def condition(self) -> Condition:
        table, column = self.column_ref()
        op = self.expect("OP").value
        value = float(self.expect("NUMBER").value)
        return Condition(column, op, value, table)

    def statement(self) -> SelectStatement:
        explain = False
        if self.accept("KEYWORD", "EXPLAIN"):
            # Bare EXPLAIN (without execution) is not offered: the whole
            # point of the surface is predicted-vs-measured timings.
            self.expect("KEYWORD", "ANALYZE")
            explain = True
        self.expect("KEYWORD", "SELECT")
        aggs = [self.aggregate()]
        # Multiple aggregates per query (paper §8 extension): a comma-
        # separated SELECT list evaluated in one rendering pass.
        while self.accept("PUNCT", ","):
            aggs.append(self.aggregate())
        agg = aggs[0]
        self.expect("KEYWORD", "FROM")
        point_table = self.expect("IDENT").value
        self.expect("PUNCT", ",")
        region_table = self.expect("IDENT").value
        self.expect("KEYWORD", "WHERE")
        spatial = self.spatial_predicate()
        conditions: list[Condition] = []
        while self.accept("KEYWORD", "AND"):
            conditions.append(self.condition())
        self.expect("KEYWORD", "GROUP")
        self.expect("KEYWORD", "BY")
        gb_table, gb_column = self.column_ref()
        self.expect("EOF")
        return SelectStatement(
            aggregate=agg,
            point_table=point_table,
            region_table=region_table,
            spatial=spatial,
            conditions=tuple(conditions),
            group_by_table=gb_table,
            group_by_column=gb_column,
            aggregates=tuple(aggs),
            explain_analyze=explain,
        )


def parse(text: str) -> SelectStatement:
    """Parse one statement; raises :class:`SqlError` with position info."""
    return _Parser(tokenize(text)).statement()
