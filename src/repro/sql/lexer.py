"""Tokenizer for the spatial-aggregation SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "INSIDE", "AS",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "WITHIN", "EXPLAIN", "ANALYZE",
}

_PUNCT = {"(", ")", ",", ".", "*"}
_OPERATOR_CHARS = {"<", ">", "=", "!"}
_OPERATORS = {"<", ">", "=", "<=", ">=", "!=", "<>"}


@dataclass(frozen=True)
class Token:
    """One lexical token: kind in {KEYWORD, IDENT, NUMBER, OP, PUNCT, EOF}."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Split a statement into tokens; raises :class:`SqlError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        if ch in _OPERATOR_CHARS:
            two = text[i:i + 2]
            if two in _OPERATORS:
                tokens.append(Token("OP", "!=" if two == "<>" else two, i))
                i += 2
            elif ch in _OPERATORS:
                tokens.append(Token("OP", ch, i))
                i += 1
            else:
                raise SqlError(f"bad operator at {i}: {text[i:i+2]!r}")
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and (text[i].isdigit() or text[i] in ".eE+-"):
                # Stop a numeric literal at +/- unless it follows an exponent.
                if text[i] in "+-" and text[i - 1] not in "eE":
                    break
                i += 1
            literal = text[start:i]
            try:
                float(literal)
            except ValueError:
                raise SqlError(f"bad number at {start}: {literal!r}") from None
            tokens.append(Token("NUMBER", literal, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            value = word.upper() if kind == "KEYWORD" else word
            tokens.append(Token(kind, value, start))
            continue
        raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens except the EOF sentinel."""
    for tok in tokens:
        if tok.kind != "EOF":
            yield tok
