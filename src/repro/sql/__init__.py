"""Mini-SQL frontend for the paper's query template.

The paper frames spatial aggregation as::

    SELECT AGG(a_i) FROM P, R
    WHERE P.loc INSIDE R.geometry [AND filterCondition]*
    GROUP BY R.id

and argues the operator can slot into an existing DBMS.  This package is
that slot-in demonstrated end-to-end: a lexer, a recursive-descent parser
producing a small AST, and a planner that validates the statement against
the registered datasets and lowers it onto one of the engines.
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.ast import AggregateSpec, Condition, SelectStatement
from repro.sql.parser import parse
from repro.sql.planner import QueryPlanner

__all__ = [
    "Token",
    "tokenize",
    "AggregateSpec",
    "Condition",
    "SelectStatement",
    "parse",
    "QueryPlanner",
]
