"""AST nodes for the spatial-aggregation SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AggregateSpec:
    """``COUNT(*)`` or ``SUM/AVG/MIN/MAX(table.column)``."""

    function: str              # COUNT | SUM | AVG | MIN | MAX
    column: str | None = None  # None only for COUNT(*)
    table: str | None = None

    def __str__(self) -> str:
        if self.function == "COUNT" and self.column is None:
            return "COUNT(*)"
        qual = f"{self.table}." if self.table else ""
        return f"{self.function}({qual}{self.column})"


@dataclass(frozen=True)
class Condition:
    """One filter clause: ``[table.]column op value``."""

    column: str
    op: str
    value: float
    table: str | None = None

    def __str__(self) -> str:
        qual = f"{self.table}." if self.table else ""
        return f"{qual}{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class SpatialPredicate:
    """``points.loc INSIDE regions.geometry [WITHIN eps]``.

    The optional WITHIN extends the paper's template with an explicit
    ε-bound, letting a statement opt into the bounded engine declaratively.
    """

    point_table: str
    point_column: str
    region_table: str
    region_column: str
    epsilon: float | None = None


@dataclass(frozen=True)
class SelectStatement:
    """The full query shape the planner accepts.

    ``aggregate`` is the first (primary) SELECT item; ``aggregates`` holds
    the full SELECT list when the statement asks for several aggregates in
    one pass (the paper's §8 multi-aggregate extension).

    ``explain_analyze`` marks an ``EXPLAIN ANALYZE`` prefix: the planner
    still executes the statement, but returns the result wrapped with the
    traced span tree annotated by the optimizer's per-term predictions
    (see :mod:`repro.sql.explain`).
    """

    aggregate: AggregateSpec
    point_table: str
    region_table: str
    spatial: SpatialPredicate
    conditions: tuple[Condition, ...] = field(default_factory=tuple)
    group_by_table: str | None = None
    group_by_column: str | None = None
    aggregates: tuple[AggregateSpec, ...] = ()
    explain_analyze: bool = False

    def select_list(self) -> tuple[AggregateSpec, ...]:
        """All SELECT items (falls back to the single primary aggregate)."""
        return self.aggregates if self.aggregates else (self.aggregate,)

    def __str__(self) -> str:
        where = [
            f"{self.spatial.point_table}.{self.spatial.point_column} INSIDE "
            f"{self.spatial.region_table}.{self.spatial.region_column}"
        ]
        where += [str(c) for c in self.conditions]
        group = (
            f"{self.group_by_table}.{self.group_by_column}"
            if self.group_by_table
            else (self.group_by_column or "")
        )
        select = ", ".join(str(a) for a in self.select_list())
        prefix = "EXPLAIN ANALYZE " if self.explain_analyze else ""
        return (
            f"{prefix}SELECT {select} FROM {self.point_table}, "
            f"{self.region_table} WHERE {' AND '.join(where)} "
            f"GROUP BY {group}"
        )
