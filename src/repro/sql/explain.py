"""EXPLAIN ANALYZE: execute a statement traced, annotate with predictions.

The surface the optimizer module's future-work note asks for, made
inspectable: the planner executes the statement with a tracer installed
(independent of ``$REPRO_TRACE``), asks the calibrated
:class:`~repro.core.optimizer.RasterJoinOptimizer` for its per-term
predicted seconds *before* the run warms anything, and renders the
measured span tree with a predicted-vs-measured table per cost term —
including the relative error, so a drifting cost model is visible at the
SQL prompt.

Three regimes surface here, matching the optimizer's cost paths:
``cold`` (every term paid), ``warm`` (prepared artifacts reusable, the
preparation/polygon-pass terms discounted), and ``pyramid-warm`` (a
resident aggregate pyramid answers polygon interiors; the point pass
disappears and block folds + boundary PIP remain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import trace
from repro.types import AggregationResult

#: Cost-model term -> the trace-span name whose measured time it predicts.
#: ``point_pass``/``boundary_pip`` spans repeat per tile (and per batch);
#: the measured figure is the sum over all same-named spans in the tree.
TERM_SPANS = {
    "prepare": "prepare",
    "point_pass": "point-pass",
    "polygon_pass": "polygon-pass",
    "boundary_pip": "boundary-pip",
    "pyramid_blocks": "pyramid-block-merge",
}

#: Span attributes worth echoing in the rendered tree (everything else —
#: the stats stamp on the query root in particular — stays machine-only).
_SHOWN_ATTRS = (
    "engine", "tile", "tiles", "points", "polygons", "mode", "pairs",
    "concurrent",
)


@dataclass
class ExplainResult:
    """What ``EXPLAIN ANALYZE`` returns: the executed result plus report.

    ``result`` is the ordinary :class:`~repro.types.AggregationResult`
    (the statement really ran); ``regime`` names the optimizer cost path
    (``cold`` / ``warm`` / ``pyramid-warm``); ``predicted`` and
    ``measured`` map term names to seconds; ``text`` is the rendered
    report (also what ``str()`` yields).
    """

    result: AggregationResult
    regime: str
    predicted: dict[str, float]
    measured: dict[str, float]
    root: trace.Span
    text: str

    def __str__(self) -> str:
        return self.text


def measured_terms(root: trace.Span) -> dict[str, float]:
    """Sum measured span seconds per cost-model term over the tree."""
    out: dict[str, float] = {}
    for term, span_name in TERM_SPANS.items():
        spans = root.find(span_name)
        if spans:
            out[term] = sum(s.duration_s for s in spans)
    return out


def _render_span(span: trace.Span, depth: int, lines: list[str]) -> None:
    attrs = ", ".join(
        f"{key}={span.attrs[key]}" for key in _SHOWN_ATTRS
        if key in span.attrs
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(
        f"{'  ' * depth}{span.name:<{max(2, 24 - 2 * depth)}} "
        f"{span.duration_s * 1e3:10.3f} ms{suffix}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render(
    root: trace.Span,
    regime: str,
    predicted: dict[str, float],
    measured: dict[str, float],
) -> str:
    """The human-facing report: span tree, then the prediction table."""
    lines: list[str] = [f"regime: {regime}", ""]
    _render_span(root, 0, lines)
    lines.append("")
    lines.append(
        f"{'term':<16} {'predicted':>12} {'measured':>12} {'rel_error':>10}"
    )
    for term in TERM_SPANS:
        if term not in predicted and term not in measured:
            continue
        pred = predicted.get(term, 0.0)
        meas = measured.get(term)
        if meas is None:
            meas_text, err_text = "-", "-"
        else:
            meas_text = f"{meas:.6f}"
            err_text = (
                f"{(pred - meas) / meas:+.2f}" if meas > 0.0 else "-"
            )
        lines.append(
            f"{term:<16} {pred:12.6f} {meas_text:>12} {err_text:>10}"
        )
    return "\n".join(lines)


def explain_analyze(
    optimizer,
    engine,
    points,
    polygons,
    aggregate,
    filters,
    statement=None,
) -> ExplainResult:
    """Run one planned statement traced and build the annotated report.

    The prediction is taken *before* execution — running the query warms
    the session, and a post-hoc probe would misreport a cold run as warm.
    """
    regime, predicted = optimizer.explain_terms(points, polygons, engine)
    tracer = trace.Tracer(
        "explain",
        statement="" if statement is None else str(statement),
    )
    with trace.use(tracer):
        result = engine.execute(
            points, polygons, aggregate=aggregate, filters=filters
        )
    tracer.close()
    root = result.trace if result.trace is not None else tracer.root
    measured = measured_terms(root)
    return ExplainResult(
        result=result,
        regime=regime,
        predicted=predicted,
        measured=measured,
        root=root,
        text=render(root, regime, predicted, measured),
    )
