"""Shared-scan fusion: one point pass feeding several queries' aggregates.

The serving layer's generalization of :mod:`repro.core.multi`: where
``MultiAggregate`` fuses several SELECT items of *one* statement into one
framebuffer, this module fuses several concurrent *statements* — possibly
with different polygon sets, aggregates, and filters — into a single scan
of their shared point source.  The scan work that does not depend on the
query (batch upload, filter evaluation per distinct filter set, the
canvas projection per tile) runs once; everything arithmetic-bearing
(boundary mask, framebuffer, PIP accumulators, polygon pass) stays
per-query, replaying the exact solo code path on the exact same arrays.

Bit-identity argument
---------------------
A solo :class:`~repro.core.accurate.AccurateRasterJoin` execution whose
input fits a single device batch routes, per tile, *all* in-tile points
through one :meth:`~repro.core.accurate.AccurateRasterJoin._route_batch`
call — filters first, then projection, then the inside-viewport subset,
in input order.  ``execute_fused`` performs the same three steps once per
distinct filter set and hands the resulting arrays to each member's own
``_route_batch`` with that member's own boundary mask, framebuffer, grid,
and identity-initialized per-tile accumulators.  Float groupings in the
boundary PIP join and the framebuffer scatter are therefore identical to
the solo run, and the per-member tile partials merge through the same
tile-index-order :meth:`_merge_tile_partials` fold.  Queries whose input
would *not* fit a single batch are not fused (batch boundaries change
float groupings), nor are queries the aggregate pyramid would answer
(the pyramid path groups floats differently than the exact path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.pyramid import channel_kinds
from repro.core.accurate import AccurateRasterJoin
from repro.core.aggregates import Aggregate
from repro.core.filters import FilterSet
from repro.data.dataset import PointDataset
from repro.device.batching import plan_batches
from repro.device.memory import ResidentPointSet
from repro.exec.backend import TilePartial
from repro.geometry.polygon import PolygonSet
from repro.obs import trace
from repro.types import AggregationResult, ExecutionStats


@dataclass
class FusedQuery:
    """One member of a fused scan: everything but the shared points."""

    polygons: PolygonSet
    aggregate: Aggregate
    filters: FilterSet


def fusable(engine, statement, points, regions, aggregate, filters) -> bool:
    """Cheap submit-time gate: may this query join a fused scan?

    Only the accurate engine is fused (the bounded engine's ε-canvas
    depends on the polygons, so two statements rarely share one), never
    an ``EXPLAIN ANALYZE`` (it owns the tracer), and never a query the
    warm aggregate pyramid would answer — the pyramid's block partials
    group floats differently than the exact path, so fusing such a query
    would change its bits relative to solo execution.
    """
    if type(engine) is not AccurateRasterJoin:
        return False
    if getattr(statement, "explain_analyze", False):
        return False
    if (
        not filters
        and channel_kinds(aggregate) is not None
        and engine.pyramid_warmth(points, regions)
    ):
        return False
    return True


def fusion_key(engine, points, regions) -> tuple:
    """Group key: queries fusable together share the scan's geometry.

    Same point source (by identity — the scan iterates it once), same
    render spec, and same polygon-set bounding box: the accurate engine
    derives its canvas (and therefore its tile layout and every
    ``pixel_of`` projection) from the polygon bbox alone, so equal boxes
    under an equal spec mean the shared projection is valid for every
    member.  ``execute_fused`` re-verifies the derived canvases match
    before trusting this.
    """
    bbox = regions.bbox
    return (
        id(points),
        engine.prepared_spec(),
        (bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax),
    )


def fits_single_batch(engine, points, columns, reserved_bytes) -> bool:
    """Whether the fused scan — and every member solo — is one batch.

    Device-less and device-resident inputs always are.  A host input is
    planned with the *union* column set and the *summed* framebuffer
    reservation, which upper-bounds every member's solo plan: if the
    union fits one batch, each member's narrower plan does too, so the
    solo runs being mirrored had whole-input float groupings as well.
    """
    if engine.device is None or isinstance(points, ResidentPointSet):
        return True
    plan = plan_batches(points, columns, engine.device, reserved_bytes)
    return plan.fits_in_one_batch


def _union_columns(engine, queries) -> tuple[str, ...]:
    """Scan columns: every member's required columns, first-seen order."""
    names: list[str] = ["x", "y"]
    for query in queries:
        for col in engine.required_columns(query.aggregate, query.filters):
            if col not in names:
                names.append(col)
    return tuple(names)


def _canvas_token(prepared) -> tuple:
    """Value identity of a prepared canvas + tile layout."""
    extent = prepared.canvas.extent
    return (
        extent.xmin, extent.ymin, extent.xmax, extent.ymax,
        prepared.canvas.width, prepared.canvas.height,
        len(prepared.tiles),
    )


class _TileState:
    """One member's in-flight artifacts for the current tile."""

    __slots__ = (
        "stats", "accumulators", "boundary", "built_boundary",
        "built_unit_boundary", "fbo", "units_mode",
    )

    def __init__(self, engine, tile_idx, tile, prepared, query, retain):
        self.stats = ExecutionStats(engine=engine.name, batches=0, passes=0)
        self.accumulators = engine._new_accumulators(
            query.polygons, query.aggregate
        )
        self.units_mode = retain and prepared.units is not None
        self.boundary, self.built_boundary, self.built_unit_boundary = (
            engine._tile_boundary(
                tile_idx, tile, prepared, query.polygons, self.stats,
                self.units_mode,
            )
        )
        self.fbo = engine._tile_framebuffer(
            tile, query.aggregate, engine.fbo_dtype
        )


def execute_fused(
    engine: AccurateRasterJoin,
    points: PointDataset | ResidentPointSet,
    queries: list[FusedQuery],
) -> list[AggregationResult] | None:
    """Run every member query off one shared point scan.

    Returns one :class:`AggregationResult` per member, in order — each
    bit-identical to what ``engine.execute`` would have produced solo —
    or ``None`` when a runtime gate fails (canvas mismatch across
    members, or the input does not fit a single batch), in which case
    the caller falls back to solo execution; nothing member-visible has
    been produced, only session prepared state that solo runs reuse.
    """
    n = len(queries)
    stats_list = [
        ExecutionStats(engine=engine.name, batches=0, passes=0)
        for _ in queries
    ]
    with trace.query_scope(engine.name) as root:
        prepared = [
            engine._prepare(query.polygons, stats)
            for query, stats in zip(queries, stats_list)
        ]
        if len({_canvas_token(p) for p in prepared}) != 1:
            return None
        tiles = prepared[0].tiles
        columns = _union_columns(engine, queries)
        reserved = sum(
            engine._max_fbo_bytes(tiles, q.aggregate, engine.fbo_dtype)
            for q in queries
        )
        if not fits_single_batch(engine, points, columns, reserved):
            return None
        # Members sharing a filter conjunction share its evaluation (and
        # the projection of the surviving points): the scan cost is per
        # distinct filter set, not per query.
        groups: dict[tuple, list[int]] = {}
        for i, query in enumerate(queries):
            fkey = tuple(
                (f.column, f.op, f.value) for f in query.filters.filters
            )
            groups.setdefault(fkey, []).append(i)
        retain = engine.session is not None
        partials: list[list[TilePartial]] = [[] for _ in queries]
        scan_stats = ExecutionStats(engine=engine.name, batches=0, passes=0)

        def run_tile(tile_idx, tile, filtered) -> list[TilePartial]:
            """All members' work for one tile: one ``TilePartial`` each.

            Tiles are independent (each owns its framebuffer, boundary
            mask, and identity-initialized accumulators), so the per-tile
            closures fan across the engine's execution backend exactly
            like a solo run's tile tasks — including the resident process
            pool's host, where the fork path ships each closure to a
            worker and the per-member partials travel back together.
            """
            states = [
                _TileState(engine, tile_idx, tile, prepared[i],
                           queries[i], retain)
                for i in range(n)
            ]
            if filtered is not None:
                for fkey, members in groups.items():
                    xs, ys, attrs = filtered[fkey]
                    ix, iy, inside = tile.pixel_of(xs, ys)
                    if not inside.all():
                        xs, ys = xs[inside], ys[inside]
                        ix, iy = ix[inside], iy[inside]
                        attrs = {
                            name: arr[inside]
                            for name, arr in attrs.items()
                        }
                    if len(xs) == 0:
                        continue
                    for i in members:
                        state = states[i]
                        engine._route_batch(
                            state.boundary, state.fbo, xs, ys, ix, iy,
                            attrs, queries[i].polygons, prepared[i].grid,
                            queries[i].aggregate, state.accumulators,
                            state.stats,
                        )
            out: list[TilePartial] = []
            for i, query in enumerate(queries):
                state = states[i]
                built_cov, built_unit_cov = engine._polygon_pass(
                    tile_idx, tile, prepared[i], state.boundary,
                    state.fbo, query.polygons, query.aggregate,
                    state.accumulators, state.stats, state.units_mode,
                )
                state.stats.passes = 1
                out.append(TilePartial(
                    tile_idx, state.accumulators, state.stats,
                    saw_points=True,
                    boundary_mask=state.built_boundary if retain else None,
                    coverage=built_cov if retain else None,
                    unit_boundary=(
                        state.built_unit_boundary if retain else None
                    ),
                    unit_coverage=built_unit_cov if retain else None,
                ))
            return out

        def run_tiles(filtered) -> None:
            closures = [
                (lambda idx=tile_idx, t=tile: run_tile(idx, t, filtered))
                for tile_idx, tile in enumerate(tiles)
            ]
            # run_tasks returns in task (= tile-index) order whatever the
            # completion order, so the per-member partial lists fold in
            # the same tile order a serial loop would have produced.
            for tile_partials in engine.backend.run_tasks(closures):
                for i, partial in enumerate(tile_partials):
                    partials[i].append(partial)

        with trace.span(
            "fused-scan", queries=n, groups=len(groups), tiles=len(tiles)
        ):
            routed = False
            for batch in engine._batches(
                points, columns, scan_stats, reserved_bytes=reserved
            ):
                if routed:
                    # The single-batch gate miscounted (it is planned
                    # from sizes, not re-derived here); the first batch's
                    # partials no longer mirror a solo run, so bail to
                    # the solo fallback.
                    return None
                filtered = {}
                for fkey, members in groups.items():
                    group_stats = ExecutionStats(
                        engine=engine.name, batches=0, passes=0
                    )
                    filtered[fkey] = engine._apply_filters(
                        batch, queries[members[0]].filters, group_stats
                    )
                    for i in members:
                        stats_list[i].points_processed += (
                            group_stats.points_processed
                        )
                        stats_list[i].points_filtered_out += (
                            group_stats.points_filtered_out
                        )
                run_tiles(filtered)
                routed = True
            if not routed:
                # Zero-batch input: the polygon pass still runs per tile
                # (identity framebuffers), exactly like a solo execution
                # over an empty source.
                run_tiles(None)

        results: list[AggregationResult] = []
        for i, query in enumerate(queries):
            stats = stats_list[i]
            engine._record_execution_env(stats, len(tiles))
            accumulators = engine._new_accumulators(
                query.polygons, query.aggregate
            )
            engine._merge_tile_partials(
                partials[i], prepared[i], query.aggregate, accumulators,
                stats,
            )
            # Every member is charged the shared scan's transfer — the
            # cost its solo run would have paid — and reports how many
            # queries the point pass served.
            stats.transfer_s += scan_stats.transfer_s
            stats.bytes_transferred += scan_stats.bytes_transferred
            stats.batches += scan_stats.batches
            if stats.passes == 0:
                stats.passes = 1
            if stats.batches == 0:
                stats.batches = 1
            stats.extra["fused_queries"] = n
            results.append(AggregationResult(
                values=query.aggregate.finalize(accumulators),
                channels=accumulators,
                stats=stats,
                trace=root,
            ))
        if root is not None:
            root.attrs.update(stats_list[0].as_span_attrs())
            root.attrs["fused_queries"] = n
    engine._checkpoint_session()
    return results
