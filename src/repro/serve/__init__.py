"""Concurrent serving layer: admission, coalescing, shared-scan fusion.

See ``docs/serving.md`` for the architecture and
:class:`~repro.serve.server.Server` for the API.
"""

from repro.serve.fused import (
    FusedQuery,
    execute_fused,
    fits_single_batch,
    fusable,
    fusion_key,
)
from repro.serve.server import ServeConfig, Server

__all__ = [
    "FusedQuery",
    "ServeConfig",
    "Server",
    "execute_fused",
    "fits_single_batch",
    "fusable",
    "fusion_key",
]
