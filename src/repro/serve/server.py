"""Concurrent query server: admission control, coalescing, fused scans.

One :class:`Server` multiplexes many clients over a single
:class:`~repro.sql.planner.QueryPlanner` — one warm
:class:`~repro.cache.session.QuerySession`, one pinned execution backend,
one catalog.  Three layers between ``submit`` and the engines:

1. **Admission control** — a bounded in-flight count.  Submissions past
   ``max_queue`` raise :class:`~repro.errors.ServerOverloadedError`
   synchronously (shed load at the door, don't queue unboundedly), and
   waiters can bound their patience with a per-query timeout that raises
   :class:`~repro.errors.QueryTimeoutError` without interrupting the
   execution (coalesced followers are still served).
2. **In-flight coalescing** — a submission textually identical to one
   already in flight (same canonical statement, same catalog objects)
   attaches to the leader's future instead of executing again; the one
   result fans out to every waiter, followers marked with
   ``stats.extra["coalesced"] = True``.
3. **Shared-scan batching** — fusable submissions wait out a small
   batching window; the group runs as one point pass feeding every
   member's accumulators (:mod:`repro.serve.fused`), each result
   bit-identical to solo execution.

Everything is stdlib: ``concurrent.futures`` for the worker pool and the
client-visible futures, ``asyncio.wrap_future`` for the async facade.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.obs import metrics, trace
from repro.serve.fused import FusedQuery, execute_fused, fusable, fusion_key
from repro.sql.ast import SelectStatement
from repro.sql.parser import parse


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for a :class:`Server` (see ``docs/serving.md``)."""

    #: Worker threads executing queries.  Distinct from the engines'
    #: tile-level backend workers: a server worker runs a whole query
    #: (or fused group), which may itself fan out tiles.
    max_workers: int = 4
    #: Admission bound: maximum leaders in flight (queued + running).
    #: Coalesced followers don't count — they cost no execution.
    max_queue: int = 32
    #: How long a fusable submission waits for companions before its
    #: group executes.  Zero still fuses whatever arrives in the same
    #: scheduler beat; raise it to trade latency for fusion width.
    batch_window_s: float = 0.002
    #: A fusion group this wide executes immediately, window or not.
    max_fused: int = 16
    #: Default per-query wait bound; ``None`` waits forever.
    timeout_s: float | None = None


class _Entry:
    """One admitted leader: its plan, its future, and its followers."""

    __slots__ = (
        "key", "statement", "engine", "points", "regions", "aggregate",
        "filters", "future", "followers", "submitted_at",
    )

    def __init__(self, key, statement, engine, points, regions, aggregate,
                 filters) -> None:
        self.key = key
        self.statement = statement
        self.engine = engine
        self.points = points
        self.regions = regions
        self.aggregate = aggregate
        self.filters = filters
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.followers: list[concurrent.futures.Future] = []
        self.submitted_at = time.perf_counter()


def _safe_set(future, result=None, error=None) -> None:
    """Settle a future that a timed-out waiter may have cancelled."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except concurrent.futures.InvalidStateError:
        pass


def _coalesced_copy(result):
    """The leader's result re-stamped for a follower.

    Same value arrays (they are immutable by convention), fresh stats
    object so ``extra["coalesced"]`` marks only the follower's copy.
    Results that aren't plain dataclasses (``ExplainResult`` et al.) fan
    out as-is.
    """
    stats = getattr(result, "stats", None)
    if stats is None:
        return result
    try:
        marked = dataclasses.replace(
            stats, extra={**stats.extra, "coalesced": True}
        )
        return dataclasses.replace(result, stats=marked)
    except TypeError:
        return result


class Server:
    """Admission + coalescing + fusion over one shared planner."""

    def __init__(self, planner, config: ServeConfig | None = None) -> None:
        self._planner = planner
        self._config = config if config is not None else ServeConfig()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self._config.max_workers,
            thread_name_prefix="repro-serve",
        )
        # Reentrant: max_fused overflow flushes a group from inside the
        # admission critical section.
        self._lock = threading.RLock()
        self._inflight: dict[tuple, _Entry] = {}
        self._pending: dict[tuple, list[_Entry]] = {}
        self._timers: dict[tuple, threading.Timer] = {}
        self._depth = 0
        self._closed = False
        self._admitted = 0
        self._rejected = 0
        self._coalesced = 0
        self._fused_queries = 0
        self._fused_scans = 0
        self._timeouts = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, statement: str | SelectStatement
    ) -> concurrent.futures.Future:
        """Admit a statement; returns the future of its result.

        Raises :class:`ServerClosedError` after :meth:`close` and
        :class:`ServerOverloadedError` when ``max_queue`` leaders are
        already in flight — both synchronously, so callers shed load
        without ever holding a doomed future.
        """
        stmt = parse(statement) if isinstance(statement, str) else statement
        # Planning happens outside the admission lock: it only reads the
        # catalog, and a malformed statement should fail its caller
        # without charging the queue.
        engine, points, regions, aggregate, filters = self._planner.plan(stmt)
        key = (str(stmt), id(points), id(regions))
        with self._lock, trace.span("serve-admit"):
            if self._closed:
                raise ServerClosedError("server is closed")
            leader = self._inflight.get(key)
            if leader is not None:
                with trace.span("serve-coalesce"):
                    follower: concurrent.futures.Future = (
                        concurrent.futures.Future()
                    )
                    leader.followers.append(follower)
                    self._coalesced += 1
                    metrics.counter("serve_coalesced")
                return follower
            if self._depth >= self._config.max_queue:
                self._rejected += 1
                metrics.counter("serve_rejected")
                raise ServerOverloadedError(
                    f"{self._depth} queries in flight "
                    f"(max_queue={self._config.max_queue})"
                )
            entry = _Entry(key, stmt, engine, points, regions, aggregate,
                           filters)
            self._inflight[key] = entry
            self._depth += 1
            self._admitted += 1
            metrics.counter("serve_admitted")
            metrics.gauge_set("serve_queue_depth", self._depth)
            metrics.gauge_max("serve_queue_depth_peak", self._depth)
            if fusable(engine, stmt, points, regions, aggregate, filters):
                self._enqueue_fusable(entry)
            else:
                self._pool.submit(self._run_entry, entry)
        return entry.future

    def _enqueue_fusable(self, entry: _Entry) -> None:
        """Park a fusable leader in its batching-window group (locked)."""
        gkey = fusion_key(entry.engine, entry.points, entry.regions)
        group = self._pending.get(gkey)
        if group is None:
            self._pending[gkey] = [entry]
            timer = threading.Timer(
                self._config.batch_window_s, self._flush_group, args=(gkey,)
            )
            timer.daemon = True
            self._timers[gkey] = timer
            timer.start()
        else:
            group.append(entry)
            if len(group) >= self._config.max_fused:
                self._flush_group(gkey)

    def _flush_group(self, gkey: tuple) -> None:
        # Pop and submit under the lock: close() also holds it while it
        # drains _pending and only shuts the pool down afterwards, so a
        # group popped here always finds a live pool.
        with self._lock:
            group = self._pending.pop(gkey, None)
            timer = self._timers.pop(gkey, None)
            if timer is not None:
                timer.cancel()
            if group:
                self._pool.submit(self._run_group, group)

    def flush(self) -> None:
        """Execute every pending fusion group now, window be damned.

        Deterministic handle for tests and drain paths; harmless when
        nothing is pending.
        """
        with self._lock:
            keys = list(self._pending)
        for gkey in keys:
            self._flush_group(gkey)

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    def _execute(self, entry: _Entry):
        if entry.statement.explain_analyze:
            from repro.sql.explain import explain_analyze

            return explain_analyze(
                self._planner.optimizer(), entry.engine, entry.points,
                entry.regions, entry.aggregate, entry.filters,
                statement=entry.statement,
            )
        return entry.engine.execute(
            entry.points, entry.regions, aggregate=entry.aggregate,
            filters=entry.filters,
        )

    def _run_entry(self, entry: _Entry) -> None:
        metrics.observe(
            "serve_wait_s", time.perf_counter() - entry.submitted_at
        )
        try:
            with trace.span("serve-query"):
                result = self._execute(entry)
        except BaseException as exc:
            self._settle(entry, error=exc)
        else:
            self._settle(entry, result=result)

    def _run_group(self, entries: list[_Entry]) -> None:
        for entry in entries:
            metrics.observe(
                "serve_wait_s", time.perf_counter() - entry.submitted_at
            )
        if len(entries) > 1:
            queries = [
                FusedQuery(e.regions, e.aggregate, e.filters)
                for e in entries
            ]
            try:
                results = execute_fused(
                    entries[0].engine, entries[0].points, queries
                )
            except BaseException as exc:
                for entry in entries:
                    self._settle(entry, error=exc)
                return
            if results is not None:
                with self._lock:
                    self._fused_scans += 1
                    self._fused_queries += len(entries)
                metrics.counter("serve_fused_scans")
                metrics.counter("serve_fused_queries", len(entries))
                for entry, result in zip(entries, results):
                    self._settle(entry, result=result)
                return
        # Singleton group, or a runtime fusion gate said no: solo runs,
        # in admission order, on this worker.
        for entry in entries:
            try:
                with trace.span("serve-query"):
                    result = self._execute(entry)
            except BaseException as exc:
                self._settle(entry, error=exc)
            else:
                self._settle(entry, result=result)

    def _settle(self, entry: _Entry, result=None, error=None) -> None:
        with self._lock:
            self._inflight.pop(entry.key, None)
            followers = tuple(entry.followers)
            self._depth -= 1
            metrics.gauge_set("serve_queue_depth", self._depth)
        if error is not None:
            _safe_set(entry.future, error=error)
            for follower in followers:
                _safe_set(follower, error=error)
            return
        _safe_set(entry.future, result=result)
        for follower in followers:
            _safe_set(follower, result=_coalesced_copy(result))

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def execute(self, statement, timeout: float | None = None):
        """Submit and block for the result (synchronous convenience).

        ``timeout`` (default :attr:`ServeConfig.timeout_s`) bounds the
        wait, not the execution: on expiry this raises
        :class:`QueryTimeoutError` while the query keeps running for any
        coalesced followers.
        """
        if timeout is None:
            timeout = self._config.timeout_s
        future = self.submit(statement)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            with self._lock:
                self._timeouts += 1
            metrics.counter("serve_timeouts")
            raise QueryTimeoutError(
                f"query did not finish within {timeout}s"
            ) from None

    async def execute_async(self, statement, timeout: float | None = None):
        """Async facade over :meth:`submit` (same timeout semantics)."""
        if timeout is None:
            timeout = self._config.timeout_s
        future = self.submit(statement)
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), timeout)
        except asyncio.TimeoutError:
            with self._lock:
                self._timeouts += 1
            metrics.counter("serve_timeouts")
            raise QueryTimeoutError(
                f"query did not finish within {timeout}s"
            ) from None

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Serving counters, mirroring the ``serve_*`` metrics."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "coalesced": self._coalesced,
                "fused_queries": self._fused_queries,
                "fused_scans": self._fused_scans,
                "timeouts": self._timeouts,
                "depth": self._depth,
            }

    def close(self) -> None:
        """Drain and shut down: pending groups run, then workers exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers = list(self._timers.values())
            self._timers.clear()
            groups = list(self._pending.values())
            self._pending.clear()
        for timer in timers:
            timer.cancel()
        for group in groups:
            self._pool.submit(self._run_group, group)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Server(workers={self._config.max_workers}, "
                f"depth={self._depth}, admitted={self._admitted}, "
                f"coalesced={self._coalesced}, fused={self._fused_queries})"
            )
