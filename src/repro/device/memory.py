"""Device memory model: buffers, uploads, and residency.

:class:`GPUDevice` plays the role of the GPU in this reproduction.  It
enforces a memory capacity (default 3 GB, the paper's configuration) and
implements ``upload`` as an actual ``np.copyto`` into preallocated
device-side arrays, timed with a monotonic clock.  The copy is real work on
real memory, so transfer time scales with bytes moved just like a PCIe
transfer does — which is all the out-of-core experiments need from it.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import Mapping

import numpy as np

from repro.errors import DeviceError, OutOfDeviceMemoryError
from repro.obs import metrics

#: Live devices whose locks must be re-armed in forked children: a fork
#: taken while another thread holds a device lock would otherwise hand
#: every child a permanently-held lock (the process execution backend
#: forks mid-query by design).
_LIVE_DEVICES: "weakref.WeakSet[GPUDevice]" = weakref.WeakSet()


def _rearm_device_locks_after_fork() -> None:  # pragma: no cover - fork path
    global _TOTALS_LOCK
    _TOTALS_LOCK = threading.Lock()
    for device in _LIVE_DEVICES:
        device._lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_rearm_device_locks_after_fork)

# Cross-device allocation totals.  The per-device peak gauge assumes one
# query at a time per device; when the serving layer runs many queries
# concurrently their batch buffers coexist, so capacity pressure is a
# property of the *sum* of live allocations.  The module-level aggregate
# tracks that sum and publishes it under ``device="all"``.
_TOTALS_LOCK = threading.Lock()
_total_allocated = 0
_total_peak = 0


def _account(delta: int) -> None:
    global _total_allocated, _total_peak
    with _TOTALS_LOCK:
        _total_allocated = max(0, _total_allocated + delta)
        if _total_allocated > _total_peak:
            _total_peak = _total_allocated
            metrics.gauge_max(
                "device_peak_bytes", _total_peak, device="all",
            )


def aggregate_allocated_bytes() -> int:
    """Bytes currently allocated across every live device."""
    with _TOTALS_LOCK:
        return _total_allocated


def aggregate_peak_bytes() -> int:
    """High-water mark of concurrent allocation across every device.

    Unlike the per-device ``peak_allocated_bytes`` attribute this counts
    overlapping queries: two queries each holding 1 GiB at the same time
    report a 2 GiB aggregate peak even if each device-local peak is 1 GiB.
    """
    with _TOTALS_LOCK:
        return _total_peak

#: The paper limits GPU memory usage to 3 GB (§7.1).
DEFAULT_CAPACITY_BYTES = 3 * 1024**3

#: The paper limits FBO resolution to 8192 x 8192 (§7.1).
DEFAULT_MAX_RESOLUTION = 8192


class DeviceBuffer:
    """A named device-resident array (a VBO/SSBO stand-in)."""

    def __init__(self, device: "GPUDevice", name: str, array: np.ndarray) -> None:
        self._device = device
        self.name = name
        self.array = array

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def free(self) -> None:
        self._device._release(self.nbytes)
        self.array = np.zeros(0, dtype=self.array.dtype)


class ResidentPointSet:
    """Point columns pinned in device memory.

    Used for the in-memory experiments: "the GPU memory holds the entire
    data set and data need not be transferred" (§7.3).  Engines receiving a
    resident set skip the per-query upload and report zero transfer time.
    """

    def __init__(self, device: "GPUDevice", columns: dict[str, DeviceBuffer]) -> None:
        self.device = device
        self._columns = columns
        lengths = {len(b.array) for b in columns.values()}
        if len(lengths) > 1:
            raise DeviceError("resident columns have inconsistent lengths")
        self.length = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name].array
        except KeyError:
            raise DeviceError(f"column {name!r} is not resident") from None

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def free(self) -> None:
        for buf in self._columns.values():
            buf.free()
        self._columns = {}
        self.length = 0


class GPUDevice:
    """A capacity-limited device with measured host-to-device transfers."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        max_resolution: int = DEFAULT_MAX_RESOLUTION,
        name: str = "software-gpu",
    ) -> None:
        if capacity_bytes < 1:
            raise DeviceError(f"capacity must be positive, got {capacity_bytes}")
        if max_resolution < 1:
            raise DeviceError(f"max resolution must be positive, got {max_resolution}")
        self.capacity_bytes = capacity_bytes
        self.max_resolution = max_resolution
        self.name = name
        self.allocated_bytes = 0
        self.peak_allocated_bytes = 0
        self.total_bytes_transferred = 0
        self.total_transfer_s = 0.0
        # Concurrent tile workers allocate and free batch buffers from
        # several threads at once; the capacity check and the counters
        # must observe a consistent allocation total.
        self._lock = threading.Lock()
        _LIVE_DEVICES.add(self)

    # ------------------------------------------------------------------
    # Allocation accounting
    # ------------------------------------------------------------------
    def _reserve(self, nbytes: int) -> None:
        with self._lock:
            if self.allocated_bytes + nbytes > self.capacity_bytes:
                raise OutOfDeviceMemoryError(
                    f"allocation of {nbytes} bytes exceeds capacity "
                    f"({self.allocated_bytes}/{self.capacity_bytes} in use)"
                )
            self.allocated_bytes += nbytes
            if self.allocated_bytes > self.peak_allocated_bytes:
                self.peak_allocated_bytes = self.allocated_bytes
                metrics.gauge_max(
                    "device_peak_bytes", self.allocated_bytes,
                    device=self.name,
                )
        _account(nbytes)

    def _release(self, nbytes: int) -> None:
        with self._lock:
            released = min(nbytes, self.allocated_bytes)
            self.allocated_bytes -= released
        _account(-released)

    # ------------------------------------------------------------------
    # Pickling (ProcessBackend forks carry copy-on-write device clones;
    # locks do not survive pickling, so they are recreated on load)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        _LIVE_DEVICES.add(self)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def upload(self, name: str, host_array: np.ndarray) -> tuple[DeviceBuffer, float]:
        """Copy a host array into a fresh device buffer.

        Returns the buffer and the measured transfer seconds.  The copy is
        a real allocation plus ``np.copyto`` — the persistent-mapped-buffer
        write of the paper's implementation.
        """
        host_array = np.ascontiguousarray(host_array)
        self._reserve(host_array.nbytes)
        start = time.perf_counter()
        dev = np.empty_like(host_array)
        np.copyto(dev, host_array)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.total_bytes_transferred += host_array.nbytes
            self.total_transfer_s += elapsed
        return DeviceBuffer(self, name, dev), elapsed

    def upload_columns(
        self, columns: Mapping[str, np.ndarray]
    ) -> tuple[dict[str, DeviceBuffer], float]:
        """Upload several columns, returning buffers and total seconds."""
        out: dict[str, DeviceBuffer] = {}
        total = 0.0
        for name, arr in columns.items():
            buf, secs = self.upload(name, arr)
            out[name] = buf
            total += secs
        return out, total

    def make_resident(self, columns: Mapping[str, np.ndarray]) -> ResidentPointSet:
        """Pin whole columns on the device (in-memory experiment setup).

        Raises :class:`OutOfDeviceMemoryError` when the data genuinely does
        not fit, in which case the caller must fall back to batching.
        """
        buffers, _ = self.upload_columns(columns)
        return ResidentPointSet(self, buffers)

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def __repr__(self) -> str:
        return (
            f"GPUDevice({self.name!r}, capacity={self.capacity_bytes >> 20} MiB, "
            f"allocated={self.allocated_bytes >> 20} MiB, "
            f"max FBO {self.max_resolution})"
        )
