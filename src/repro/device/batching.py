"""Out-of-core batch planning.

When the point columns needed by a query do not fit in device memory, they
are split into contiguous row ranges that do (§5, "Out-of-Core
Processing").  Each batch is transferred exactly once per rendering pass;
the planner also reserves headroom for the framebuffer and result buffers
so a plan never over-commits the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice
from repro.errors import DeviceError


@dataclass(frozen=True)
class BatchPlan:
    """Row ranges into which a dataset is split for device uploads."""

    num_points: int
    rows_per_batch: int
    columns: tuple[str, ...]
    row_bytes: int

    @property
    def num_batches(self) -> int:
        if self.num_points == 0:
            return 0
        return -(-self.num_points // self.rows_per_batch)  # ceil division

    def ranges(self) -> list[tuple[int, int]]:
        return [
            (start, min(start + self.rows_per_batch, self.num_points))
            for start in range(0, self.num_points, self.rows_per_batch)
        ]

    @property
    def fits_in_one_batch(self) -> bool:
        return self.num_batches <= 1


def plan_batches(
    points: PointDataset,
    columns: tuple[str, ...],
    device: GPUDevice | None,
    reserved_bytes: int = 0,
) -> BatchPlan:
    """Split ``points`` into batches whose columns fit on the device.

    ``columns`` are the columns the query actually touches — locations
    plus filter/aggregate attributes.  Only those are transferred, which is
    why adding constraints increases transfer time in Figure 11.
    ``reserved_bytes`` accounts for FBOs and result arrays already living
    on the device.
    """
    row_bytes = sum(points.column(name).dtype.itemsize for name in columns)
    if device is None:
        # No device model: a single logical batch (pure in-memory run).
        return BatchPlan(len(points), max(1, len(points)), columns, row_bytes)
    budget = device.capacity_bytes - reserved_bytes
    if budget <= 0:
        raise DeviceError(
            f"device has no memory left for points "
            f"(reserved {reserved_bytes} of {device.capacity_bytes})"
        )
    rows = max(1, budget // max(row_bytes, 1))
    return BatchPlan(len(points), int(rows), columns, row_bytes)


def tile_parallelism(
    device: GPUDevice | None,
    fbo_bytes: int,
    plan: BatchPlan | None,
    workers: int,
) -> int:
    """How many tile tasks may hold device batches concurrently.

    Batch *plans* are identical across backends (they depend only on the
    device capacity, never on the worker count — the determinism
    guarantee needs identical batch boundaries).  What parallel execution
    must bound instead is the number of tiles holding a batch plus its
    framebuffer headroom at once: each concurrent tile's worst-case
    footprint is one planned batch plus its FBO reservation, and the sum
    of those per-worker budgets must stay inside the global device
    budget.  Without a device (or without a known plan, e.g. a streamed
    chunk source whose sizes are unknown up front with a device present)
    the answer is conservative: unlimited without a device, one at a time
    with one.
    """
    if device is None:
        return workers
    if plan is None:
        return 1
    batch_bytes = min(plan.num_points, plan.rows_per_batch) * plan.row_bytes
    footprint = fbo_bytes + batch_bytes
    if footprint <= 0:
        return workers
    return max(1, min(workers, device.capacity_bytes // footprint))
