"""Simulated GPU device: capacity-limited memory and measured transfers.

The paper's out-of-core behaviour (Figures 9, 11, 13) is driven by two
hardware facts: device memory is finite (they cap it at 3 GB), and host-to-
device copies cost real time that can dominate a fast query.  This package
models both — allocations fail past capacity, point batches are physically
copied into device-resident buffers with the copy time recorded — so the
engines exhibit the same batching structure and transfer/processing splits
as the paper's OpenGL implementation.
"""

from repro.device.memory import GPUDevice, DeviceBuffer, ResidentPointSet
from repro.device.batching import BatchPlan, plan_batches

__all__ = [
    "GPUDevice",
    "DeviceBuffer",
    "ResidentPointSet",
    "BatchPlan",
    "plan_batches",
]
