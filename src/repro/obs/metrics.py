"""Process-wide metrics registry: counters, gauges, histograms, labels.

One global :data:`REGISTRY` collects operational counts the flat
per-query :class:`~repro.types.ExecutionStats` cannot: cache-tier
hit/miss/evict/demote rates across queries, store save/load bytes and
latencies, pyramid block hits vs. fallback points, backend pool reuse,
and the device-memory high-water mark.  The module-level helpers
(:func:`counter`, :func:`gauge_set`, :func:`gauge_max`, :func:`observe`)
all delegate to it.

Instrumented call sites sit on cache/store/dispatch paths — never in
per-point loops — so a plain lock is cheap enough.  Metrics incremented
inside a process-backend worker (forked or resident) do not die with
the child: each task captures a :meth:`MetricsRegistry.baseline` before
running and ships the :meth:`~MetricsRegistry.delta_since` home in
``TilePartial.metrics``, which the parent's deterministic merge folds
back with :meth:`~MetricsRegistry.apply_delta`.  Deltas cover counters
and histograms; gauges stay process-local facts (a worker's
memory-level gauge describes the worker, not the parent) and are
excluded by design — see ``docs/observability.md``.

Snapshots render metric keys Prometheus-style — ``name{k="v",...}`` with
labels sorted — which keeps :func:`repro.obs.export.prometheus_text`
a straight dump and makes JSON snapshots diffable.
"""

from __future__ import annotations

import threading

#: Histogram bucket upper bounds (seconds); chosen for IO latencies that
#: span sub-millisecond mmap loads to multi-second cold saves.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(DEFAULT_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {},
        }
        for i, bound in enumerate(DEFAULT_BUCKETS):
            out["buckets"][f"le_{bound:g}"] = self.buckets[i]
        out["buckets"]["le_inf"] = self.buckets[-1]
        return out


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms with labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, amount: float = 1, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def gauge_set(self, name: str, value: float, **labels) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Set the gauge to ``max(current, value)`` — high-water marks."""
        key = _key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    # Cross-process deltas (TilePartial.metrics round trip)
    # ------------------------------------------------------------------
    def baseline(self) -> dict:
        """A cheap snapshot for :meth:`delta_since` (counters/histograms).

        Histograms are captured as raw state tuples, not rendered
        dicts — a worker calls this once per task, so it stays light.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    k: (h.count, h.sum, h.min, h.max, tuple(h.buckets))
                    for k, h in self._histograms.items()
                },
            }

    def delta_since(self, baseline: dict) -> dict:
        """Increments made since ``baseline``, as a picklable dict.

        Keys with no change are omitted, so the common no-instrumented-
        work tile ships an empty dict (dropped by the caller).  Gauges
        are deliberately absent: they are process-local level facts, not
        increments, and merging a worker's would clobber the parent's.
        """
        base_counters = baseline["counters"]
        base_hists = baseline["histograms"]
        delta: dict = {}
        with self._lock:
            counters = {
                k: v - base_counters.get(k, 0)
                for k, v in self._counters.items()
                if v != base_counters.get(k, 0)
            }
            histograms = {}
            for k, h in self._histograms.items():
                prev = base_hists.get(k)
                if prev is not None and prev[0] == h.count:
                    continue
                if prev is None:
                    prev = (0, 0.0, float("inf"), float("-inf"),
                            (0,) * len(h.buckets))
                histograms[k] = (
                    h.count - prev[0],
                    h.sum - prev[1],
                    h.min,
                    h.max,
                    tuple(b - p for b, p in zip(h.buckets, prev[4])),
                )
        if counters:
            delta["counters"] = counters
        if histograms:
            delta["histograms"] = histograms
        return delta

    def apply_delta(self, delta: dict) -> None:
        """Fold a worker's :meth:`delta_since` result into this registry.

        Counter and bucket increments add; histogram min/max merge by
        comparison (a delta's min/max are the worker's observed extremes,
        which bound the deltas' own observations).
        """
        with self._lock:
            for k, v in delta.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0) + v
            for k, (count, total, low, high, buckets) in delta.get(
                "histograms", {}
            ).items():
                hist = self._histograms.get(k)
                if hist is None:
                    hist = self._histograms[k] = _Histogram()
                hist.count += count
                hist.sum += total
                hist.min = min(hist.min, low)
                hist.max = max(hist.max, high)
                for i, b in enumerate(buckets):
                    hist.buckets[i] += b

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A point-in-time plain-dict copy, safe to mutate or serialize."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Clear everything (tests and benchmark legs isolate with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented call site reports to.
REGISTRY = MetricsRegistry()


def counter(name: str, amount: float = 1, **labels) -> None:
    REGISTRY.counter(name, amount, **labels)


def gauge_set(name: str, value: float, **labels) -> None:
    REGISTRY.gauge_set(name, value, **labels)


def gauge_max(name: str, value: float, **labels) -> None:
    REGISTRY.gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    REGISTRY.observe(name, value, **labels)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
