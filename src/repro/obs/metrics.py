"""Process-wide metrics registry: counters, gauges, histograms, labels.

One global :data:`REGISTRY` collects operational counts the flat
per-query :class:`~repro.types.ExecutionStats` cannot: cache-tier
hit/miss/evict/demote rates across queries, store save/load bytes and
latencies, pyramid block hits vs. fallback points, backend pool reuse,
and the device-memory high-water mark.  The module-level helpers
(:func:`counter`, :func:`gauge_set`, :func:`gauge_max`, :func:`observe`)
all delegate to it.

Instrumented call sites sit on cache/store/dispatch paths — never in
per-point loops — so a plain lock is cheap enough.  Metrics incremented
inside a forked tile worker die with the child (only ``TilePartial``
results are pickled back); all shipped hooks run parent-side, and
``docs/observability.md`` documents the caveat.

Snapshots render metric keys Prometheus-style — ``name{k="v",...}`` with
labels sorted — which keeps :func:`repro.obs.export.prometheus_text`
a straight dump and makes JSON snapshots diffable.
"""

from __future__ import annotations

import threading

#: Histogram bucket upper bounds (seconds); chosen for IO latencies that
#: span sub-millisecond mmap loads to multi-second cold saves.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(DEFAULT_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {},
        }
        for i, bound in enumerate(DEFAULT_BUCKETS):
            out["buckets"][f"le_{bound:g}"] = self.buckets[i]
        out["buckets"]["le_inf"] = self.buckets[-1]
        return out


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms with labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, amount: float = 1, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def gauge_set(self, name: str, value: float, **labels) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Set the gauge to ``max(current, value)`` — high-water marks."""
        key = _key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A point-in-time plain-dict copy, safe to mutate or serialize."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Clear everything (tests and benchmark legs isolate with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented call site reports to.
REGISTRY = MetricsRegistry()


def counter(name: str, amount: float = 1, **labels) -> None:
    REGISTRY.counter(name, amount, **labels)


def gauge_set(name: str, value: float, **labels) -> None:
    REGISTRY.gauge_set(name, value, **labels)


def gauge_max(name: str, value: float, **labels) -> None:
    REGISTRY.gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    REGISTRY.observe(name, value, **labels)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
