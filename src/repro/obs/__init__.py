"""Observability substrate: trace spans, metrics registry, exporters.

* :mod:`repro.obs.trace` — hierarchical spans with a one-branch no-op
  fast path; ``$REPRO_TRACE`` gates ambient per-query tracing.
* :mod:`repro.obs.metrics` — process-wide labelled
  counters/gauges/histograms (cache tiers, store IO, pools, device).
* :mod:`repro.obs.export` — JSON-lines sink, Chrome ``trace_event``
  timelines, Prometheus text exposition.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.obs import metrics
from repro.obs.trace import (
    TRACE_ENV_VAR,
    Span,
    Tracer,
    active,
    attach,
    query_scope,
    span,
    tile_scope,
    use,
)

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "Tracer",
    "active",
    "attach",
    "metrics",
    "query_scope",
    "span",
    "tile_scope",
    "use",
]
