"""Exporters: JSON-lines span sink, Chrome trace_event, Prometheus text.

Three consumers, three formats:

* :func:`append_jsonl` — the ``$REPRO_TRACE=<path>`` sink: one JSON
  object per span, flattened depth-first with ``id``/``parent`` links,
  greppable and tail-able while a workload runs.
* :func:`chrome_trace` / :func:`write_chrome_trace` — a
  ``chrome://tracing`` / Perfetto timeline: complete ("X") events in
  microseconds, tile subtrees fanned out onto per-tile tracks so the
  parallel point pass reads as lanes.
* :func:`prometheus_text` — text exposition of the metrics registry
  snapshot, for scraping or diffing between benchmark runs.
"""

from __future__ import annotations

import json

from repro.obs import metrics
from repro.obs.trace import Span


def span_to_dict(span: Span) -> dict:
    """One span as a plain dict (children omitted — links carry shape)."""
    return {
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": dict(span.attrs),
    }


def _flatten(root: Span) -> list[dict]:
    rows: list[dict] = []

    def visit(span: Span, parent_id: int | None) -> None:
        row = span_to_dict(span)
        row["id"] = len(rows)
        row["parent"] = parent_id
        rows.append(row)
        for child in span.children:
            visit(child, row["id"])

    visit(root, None)
    return rows


def append_jsonl(root: Span, path: str) -> None:
    """Append one JSON line per span of the tree to ``path``."""
    lines = [json.dumps(row, sort_keys=True) for row in _flatten(root)]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# Chrome trace_event timeline
# ----------------------------------------------------------------------
def chrome_trace(root: Span) -> dict:
    """The span tree as a Chrome ``trace_event`` JSON object.

    Every span becomes a complete ("X") event with microsecond
    timestamps.  A span carrying a ``tile`` attribute moves its whole
    subtree onto thread track ``tile + 1``, so concurrent tile tasks
    render as parallel lanes under the query's track 0.
    """
    events: list[dict] = []

    def visit(span: Span, tid: int) -> None:
        if "tile" in span.attrs:
            tid = int(span.attrs["tile"]) + 1
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 1,
            "tid": tid,
            "args": {k: str(v) for k, v in span.attrs.items()},
        })
        for child in span.children:
            visit(child, tid)

    visit(root, 0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(root: Span, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(root), handle, indent=1)


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def prometheus_text(snapshot: dict | None = None) -> str:
    """Metrics snapshot in the Prometheus text format.

    Histograms expose ``_count``/``_sum`` plus cumulative ``_bucket``
    series, the way a real client library would.
    """
    snap = snapshot if snapshot is not None else metrics.snapshot()
    lines: list[str] = []

    def base_name(key: str) -> str:
        return key.split("{", 1)[0]

    def labels_of(key: str) -> str:
        return key[len(base_name(key)):]

    seen: set[str] = set()
    for key in sorted(snap["counters"]):
        name = base_name(key)
        if name not in seen:
            seen.add(name)
            lines.append(f"# TYPE {name} counter")
        lines.append(f"{key} {snap['counters'][key]:g}")
    for key in sorted(snap["gauges"]):
        name = base_name(key)
        if name not in seen:
            seen.add(name)
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{key} {snap['gauges'][key]:g}")
    for key in sorted(snap["histograms"]):
        name = base_name(key)
        labels = labels_of(key)
        if name not in seen:
            seen.add(name)
            lines.append(f"# TYPE {name} histogram")
        hist = snap["histograms"][key]
        cumulative = 0
        for bound, count in hist["buckets"].items():
            cumulative += count
            le = bound[len("le_"):].replace("inf", "+Inf")
            inner = labels[1:-1] + "," if labels else ""
            lines.append(
                f'{name}_bucket{{{inner}le="{le}"}} {cumulative}'
            )
        lines.append(f"{name}_sum{labels} {hist['sum']:g}")
        lines.append(f"{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + "\n"
