"""Hierarchical trace spans with a near-free off switch.

The engines wrap each query phase — plan, prepare, partition, and the
per-tile point pass / polygon pass / pyramid block-merge / boundary PIP —
in a :func:`span` context manager.  When no tracer is installed the call
returns a shared no-op scope after a single thread-local lookup, so the
instrumented hot paths cost one branch per phase entry (the tier-1
overhead gate in ``benchmarks/bench_trace_overhead.py`` pins this below
3% on a warm query).

Spans are plain picklable data (no parent backrefs, no locks): a tile
task forked onto a :class:`~repro.exec.backend.ProcessBackend` records
its subtree in the child and ships it home inside ``TilePartial.span``;
the parent re-attaches shipped subtrees in tile-index order during the
deterministic merge, so the final tree is identical across serial,
thread, and process backends up to timings.

``$REPRO_TRACE`` turns ambient tracing on for every query:

* unset / ``0`` / ``false`` / ``no`` / ``off`` — tracing off (default);
* ``1`` / ``true`` / ``yes`` / ``on`` — trace every query, keep the tree
  on ``result.trace`` only;
* any other value — treat it as a file path and additionally append one
  JSON-lines record per span to it (see :mod:`repro.obs.export`).

``EXPLAIN ANALYZE`` installs a tracer explicitly through :class:`use`,
independent of the environment flag.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Environment variable gating ambient (per-query) tracing.
TRACE_ENV_VAR = "REPRO_TRACE"

_FALSE_FLAGS = frozenset({"", "0", "false", "no", "off"})
_TRUE_FLAGS = frozenset({"1", "true", "yes", "on"})


@dataclass
class Span:
    """One timed phase: monotonic start, duration, typed attributes.

    Children hold sub-phases; there is deliberately no parent backref so
    a subtree pickles cleanly across a fork boundary.
    """

    name: str
    start_s: float = 0.0
    duration_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def walk(self):
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]


class Tracer:
    """Owns one span tree and the open-span stack for a single thread."""

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "trace", **attrs) -> None:
        self.root = Span(name=name, start_s=time.perf_counter(),
                         attrs=dict(attrs))
        self._stack = [self.root]

    def start(self, name: str, attrs: dict) -> Span:
        span = Span(name=name, start_s=time.perf_counter(), attrs=attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span.start_s
        if self._stack[-1] is span:
            self._stack.pop()

    def attach(self, span: Span) -> None:
        """Adopt an already-finished subtree (a shipped tile span)."""
        self._stack[-1].children.append(span)

    def close(self) -> Span:
        self.root.duration_s = time.perf_counter() - self.root.start_s
        return self.root


# ----------------------------------------------------------------------
# Ambient tracer (thread-local) and the one-branch span() fast path
# ----------------------------------------------------------------------
_AMBIENT = threading.local()


def active() -> Tracer | None:
    """The tracer installed on this thread, if any."""
    return getattr(_AMBIENT, "tracer", None)


class _NoopScope:
    """Shared do-nothing scope returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP = _NoopScope()


class _SpanScope:
    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc):
        self._tracer.finish(self._span)
        return False


def span(name: str, **attrs):
    """Open a child span under the ambient tracer; no-op when tracing is
    off (one thread-local lookup + one branch)."""
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is None:
        return _NOOP
    return _SpanScope(tracer, name, attrs)


def attach(child: Span | None) -> None:
    """Re-parent a shipped span subtree under the current open span.

    Callers invoke this in tile-index order during the deterministic
    merge, so the reassembled tree has the same child order on every
    backend.  No-op when tracing is off or the subtree is ``None`` (a
    tile that ran with tracing off).
    """
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is not None and child is not None:
        tracer.attach(child)


class use:
    """Install a tracer as this thread's ambient tracer for a block."""

    __slots__ = ("_tracer", "_prev")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        self._prev = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc):
        _AMBIENT.tracer = self._prev
        return False


# ----------------------------------------------------------------------
# Engine entry points
# ----------------------------------------------------------------------
def env_config() -> tuple[bool, str | None]:
    """(enabled, sink_path) from ``$REPRO_TRACE``."""
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None:
        return False, None
    value = raw.strip()
    if value.lower() in _FALSE_FLAGS:
        return False, None
    if value.lower() in _TRUE_FLAGS:
        return True, None
    return True, value


class query_scope:
    """Root scope an engine enters around one query execution.

    Three behaviours, resolved at enter time:

    * a tracer is already ambient (``EXPLAIN ANALYZE``, or a query
      nested inside another traced query — e.g. optimizer calibration
      probes): open a ``query`` child span on it;
    * no tracer but ``$REPRO_TRACE`` enables tracing: create a fresh
      tracer for the query, install it, and on exit export to the JSONL
      sink if the flag named a path;
    * otherwise: yield ``None`` and cost nothing.
    """

    __slots__ = ("_engine", "_mode", "_scope", "_tracer", "_sink", "_prev")

    def __init__(self, engine: str) -> None:
        self._engine = engine

    def __enter__(self) -> Span | None:
        tracer = getattr(_AMBIENT, "tracer", None)
        if tracer is not None:
            self._mode = "nested"
            self._scope = _SpanScope(tracer, "query",
                                     {"engine": self._engine})
            return self._scope.__enter__()
        enabled, sink = env_config()
        if not enabled:
            self._mode = "off"
            return None
        self._mode = "root"
        self._sink = sink
        self._tracer = Tracer("query", engine=self._engine)
        self._prev = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        return self._tracer.root

    def __exit__(self, *exc):
        if self._mode == "nested":
            return self._scope.__exit__(*exc)
        if self._mode == "root":
            _AMBIENT.tracer = self._prev
            root = self._tracer.close()
            if self._sink:
                # Imported lazily: export depends on Span, not the
                # other way around.
                from repro.obs.export import append_jsonl

                try:
                    append_jsonl(root, self._sink)
                except OSError:
                    pass  # an unwritable sink must never fail the query
        return False


class tile_scope:
    """Per-tile-task scope, uniform across serial/thread/process backends.

    The parent captures ``tracing = trace.active() is not None`` before
    dispatch; each tile task then records into its *own* tracer (worker
    threads and forked children have no ambient tracer, and on the
    serial backend this temporarily shadows the parent's).  The finished
    subtree travels back inside ``TilePartial.span`` — plain picklable
    data — and the parent re-attaches it during the ordered merge.
    """

    __slots__ = ("_enabled", "_attrs", "_tracer", "_prev")

    def __init__(self, enabled: bool, **attrs) -> None:
        self._enabled = enabled
        self._attrs = attrs

    def __enter__(self) -> Span | None:
        if not self._enabled:
            return None
        self._tracer = Tracer("tile", **self._attrs)
        self._prev = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        return self._tracer.root

    def __exit__(self, *exc):
        if self._enabled:
            _AMBIENT.tracer = self._prev
            self._tracer.close()
        return False
