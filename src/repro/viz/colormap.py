"""Sequential colormaps with piecewise-linear interpolation.

Only sequential (continuous) maps are provided: the paper's §8 explicitly
assumes them — with categorical maps "even a minute error can completely
change the color of the visualization", which is exactly the failure mode
the JND analysis rules out for sequential maps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RasterJoinError


class SequentialColormap:
    """Piecewise-linear RGB colormap over [0, 1]."""

    def __init__(self, name: str, stops: list[tuple[float, float, float]]) -> None:
        if len(stops) < 2:
            raise RasterJoinError("a colormap needs at least two stops")
        self.name = name
        self._stops = np.asarray(stops, dtype=np.float64)
        if self._stops.min() < 0.0 or self._stops.max() > 1.0:
            raise RasterJoinError("colormap stops must be RGB in [0, 1]")

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map normalized values (NaN-safe) to ``(..., 3)`` float RGB.

        NaN values (regions with no data) render as light gray.
        """
        values = np.asarray(values, dtype=np.float64)
        out = np.empty(values.shape + (3,), dtype=np.float64)
        nan = ~np.isfinite(values)
        clipped = np.clip(np.where(nan, 0.0, values), 0.0, 1.0)
        positions = clipped * (len(self._stops) - 1)
        low = np.floor(positions).astype(int)
        high = np.minimum(low + 1, len(self._stops) - 1)
        frac = (positions - low)[..., None]
        out[...] = self._stops[low] * (1.0 - frac) + self._stops[high] * frac
        out[nan] = (0.85, 0.85, 0.85)
        return out

    def to_bytes(self, values: np.ndarray) -> np.ndarray:
        """RGB uint8 image data."""
        return (self(values) * 255.0 + 0.5).astype(np.uint8)


#: A perceptually-ordered dark-to-bright map (viridis-like stops).
VIRIDIS_LIKE = SequentialColormap(
    "viridis-like",
    [
        (0.267, 0.005, 0.329),
        (0.283, 0.141, 0.458),
        (0.254, 0.265, 0.530),
        (0.207, 0.372, 0.553),
        (0.164, 0.471, 0.558),
        (0.128, 0.567, 0.551),
        (0.135, 0.659, 0.518),
        (0.267, 0.749, 0.441),
        (0.478, 0.821, 0.318),
        (0.741, 0.873, 0.150),
        (0.993, 0.906, 0.144),
    ],
)

#: A yellow-orange-red map like the paper's heatmaps (ColorBrewer YlOrRd).
YLORRD_LIKE = SequentialColormap(
    "ylorrd-like",
    [
        (1.000, 1.000, 0.800),
        (0.996, 0.851, 0.463),
        (0.996, 0.698, 0.298),
        (0.992, 0.553, 0.235),
        (0.988, 0.306, 0.165),
        (0.890, 0.102, 0.110),
        (0.741, 0.000, 0.149),
        (0.502, 0.000, 0.149),
    ],
)
