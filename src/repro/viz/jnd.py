"""Just-noticeable-difference analysis (the paper's §7.6 quality check).

Sequential colormaps support at most 9 perceivable classes (Harrower &
Brewer), so two visualizations are indistinguishable when every region's
normalized values differ by less than 1/9.  The paper reports a maximum
difference below 0.002 at the coarsest ε — two orders of magnitude under
the threshold; :func:`jnd_report` reproduces that measurement for any pair
of results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: 1/9 — the JND for a sequential map with 9 perceivable classes.
JND_THRESHOLD = 1.0 / 9.0


def max_normalized_difference(
    approximate: np.ndarray, accurate: np.ndarray
) -> float:
    """Largest per-region difference after joint normalization.

    Both result vectors are normalized against the *accurate* value range,
    since that is the visualization a viewer would compare against.
    """
    accurate = np.asarray(accurate, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    finite = accurate[np.isfinite(accurate)]
    if len(finite) == 0:
        return 0.0
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    a = (approximate - lo) / span
    b = (accurate - lo) / span
    diff = np.abs(a - b)
    diff = diff[np.isfinite(diff)]
    return float(diff.max()) if len(diff) else 0.0


@dataclass(frozen=True)
class JndReport:
    """Outcome of comparing an approximate and an accurate visualization."""

    max_difference: float
    mean_difference: float
    threshold: float
    perceivable_regions: int

    @property
    def indistinguishable(self) -> bool:
        """True when no region's color class can change for a human."""
        return self.max_difference < self.threshold

    def __str__(self) -> str:
        verdict = (
            "indistinguishable" if self.indistinguishable else "PERCEIVABLE"
        )
        return (
            f"JND: max diff {self.max_difference:.5f} vs threshold "
            f"{self.threshold:.4f} -> {verdict} "
            f"({self.perceivable_regions} regions over threshold)"
        )


def jnd_report(
    approximate: np.ndarray,
    accurate: np.ndarray,
    threshold: float = JND_THRESHOLD,
) -> JndReport:
    """Compare two result vectors under the JND criterion."""
    accurate = np.asarray(accurate, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    finite = accurate[np.isfinite(accurate)]
    lo = float(finite.min()) if len(finite) else 0.0
    hi = float(finite.max()) if len(finite) else 1.0
    span = hi - lo if hi > lo else 1.0
    # Both vectors must be normalized with the same affine map — anything
    # else manufactures differences for constant or degenerate ranges.
    norm_acc = (accurate - lo) / span
    norm_app = (approximate - lo) / span
    diff = np.abs(norm_app - norm_acc)
    diff = diff[np.isfinite(diff)]
    if len(diff) == 0:
        return JndReport(0.0, 0.0, threshold, 0)
    return JndReport(
        max_difference=float(diff.max()),
        mean_difference=float(diff.mean()),
        threshold=threshold,
        perceivable_regions=int(np.count_nonzero(diff >= threshold)),
    )
