"""Choropleth rendering: per-region aggregate values painted over pixels.

Renders the paper's Figure 1/6 style heatmaps: each polygon is filled with
its (normalized) aggregate value using the scanline rasterizer, then a
colormap turns the value raster into an RGB image.  Because both the
approximate and accurate results render through the same path, pixelwise
comparison isolates the aggregation error — which is what the JND analysis
measures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RasterJoinError
from repro.geometry.polygon import PolygonSet
from repro.graphics.raster_polygon import scanline_polygon_pixels
from repro.graphics.viewport import Canvas
from repro.viz.colormap import SequentialColormap, YLORRD_LIKE


def normalize_values(values: np.ndarray) -> np.ndarray:
    """Min-max normalize to [0, 1]; constant inputs map to 0.5."""
    values = np.asarray(values, dtype=np.float64)
    finite = values[np.isfinite(values)]
    if len(finite) == 0:
        return np.full(values.shape, np.nan)
    lo = float(finite.min())
    hi = float(finite.max())
    if hi <= lo:
        return np.where(np.isfinite(values), 0.5, np.nan)
    return (values - lo) / (hi - lo)


def choropleth_raster(
    polygons: PolygonSet,
    values: np.ndarray,
    resolution: int = 512,
    normalized: bool = False,
) -> np.ndarray:
    """Rasterize per-polygon values into a float image (NaN = background).

    The returned array is ``(height, width)`` with rows ordered bottom-up
    (world y increases with row index).
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) != len(polygons):
        raise RasterJoinError(
            f"{len(values)} values for {len(polygons)} polygons"
        )
    norm = values if normalized else normalize_values(values)
    canvas = Canvas.for_resolution(polygons.bbox.expanded(1e-9), resolution)
    viewport = canvas.full_viewport()
    image = np.full((viewport.height, viewport.width), np.nan)
    for pid, polygon in enumerate(polygons):
        ix, iy = scanline_polygon_pixels(viewport, polygon.rings)
        if len(ix):
            image[iy, ix] = norm[pid]
    return image


def render_choropleth(
    polygons: PolygonSet,
    values: np.ndarray,
    resolution: int = 512,
    colormap: SequentialColormap = YLORRD_LIKE,
) -> np.ndarray:
    """Full render: values -> normalized raster -> RGB uint8 image.

    The image is returned top-down (row 0 at the top), ready for PPM
    output.
    """
    raster = choropleth_raster(polygons, values, resolution)
    rgb = colormap.to_bytes(raster)
    return rgb[::-1]  # flip to top-down image convention
