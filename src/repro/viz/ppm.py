"""Dependency-free PPM/PGM image writers.

The examples save heatmaps without any imaging library: binary PPM (P6)
for RGB and PGM (P5) for grayscale are universally viewable single-header
formats.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import RasterJoinError


def write_ppm(path: str | Path, rgb: np.ndarray) -> Path:
    """Write an ``(h, w, 3)`` uint8 array as binary PPM (P6)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise RasterJoinError(
            f"PPM needs (h, w, 3) uint8, got {rgb.shape} {rgb.dtype}"
        )
    path = Path(path)
    height, width = rgb.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(rgb.tobytes())
    return path


def write_pgm(path: str | Path, gray: np.ndarray) -> Path:
    """Write an ``(h, w)`` uint8 array as binary PGM (P5)."""
    gray = np.asarray(gray)
    if gray.ndim != 2 or gray.dtype != np.uint8:
        raise RasterJoinError(
            f"PGM needs (h, w) uint8, got {gray.shape} {gray.dtype}"
        )
    path = Path(path)
    height, width = gray.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(gray.tobytes())
    return path
