"""Visualization substrate: colormaps, choropleths, and JND analysis.

The paper's Figure 6 argument — that the bounded join's errors are
imperceptible — rests on rendering choropleth heatmaps with a sequential
colormap and comparing them under the just-noticeable-difference (JND)
threshold: a sequential map supports at most 9 perceivable classes, so a
normalized value difference under 1/9 cannot change what a human sees.
This package renders those maps (to arrays and to dependency-free PPM/PGM
files) and computes the JND statistics the benchmark reports.
"""

from repro.viz.colormap import SequentialColormap, VIRIDIS_LIKE, YLORRD_LIKE
from repro.viz.heatmap import choropleth_raster, render_choropleth
from repro.viz.jnd import JND_THRESHOLD, jnd_report, max_normalized_difference
from repro.viz.ppm import write_pgm, write_ppm

__all__ = [
    "SequentialColormap",
    "VIRIDIS_LIKE",
    "YLORRD_LIKE",
    "choropleth_raster",
    "render_choropleth",
    "JND_THRESHOLD",
    "jnd_report",
    "max_normalized_difference",
    "write_pgm",
    "write_ppm",
]
