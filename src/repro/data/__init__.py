"""Datasets: schemas, in-memory point tables, on-disk columnar storage,
and the synthetic workload generators that stand in for the paper's NYC
taxi and Twitter data."""

from repro.data.dataset import PointDataset
from repro.data.schema import ColumnSpec, Schema
from repro.data.column_store import ColumnStore
from repro.data.taxi import generate_taxi, NYC_EXTENT
from repro.data.twitter import generate_twitter, USA_EXTENT
from repro.data.regions import (
    generate_neighborhoods,
    generate_counties,
    generate_voronoi_regions,
)

__all__ = [
    "PointDataset",
    "ColumnSpec",
    "Schema",
    "ColumnStore",
    "generate_taxi",
    "NYC_EXTENT",
    "generate_twitter",
    "USA_EXTENT",
    "generate_neighborhoods",
    "generate_counties",
    "generate_voronoi_regions",
]
