"""In-memory columnar point datasets.

A :class:`PointDataset` is the ``P(loc, a1, a2, ...)`` relation of the
paper: two float64 location columns plus named numeric attribute columns,
stored column-major exactly like the paper stores the taxi data ("the data
is stored as columns on disk and the required columns are loaded into main
memory").
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.data.schema import ColumnSpec, Schema
from repro.errors import SchemaError
from repro.geometry.bbox import BBox


class PointDataset:
    """A columnar table of points with numeric attributes."""

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        attributes: Mapping[str, np.ndarray] | None = None,
        name: str = "points",
    ) -> None:
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        if xs.ndim != 1 or ys.ndim != 1:
            raise SchemaError("location columns must be one-dimensional")
        if len(xs) != len(ys):
            raise SchemaError(f"x has {len(xs)} rows but y has {len(ys)}")
        self.xs = xs
        self.ys = ys
        self.name = name
        self.attributes: dict[str, np.ndarray] = {}
        if attributes:
            for col, arr in attributes.items():
                arr = np.ascontiguousarray(arr)
                if len(arr) != len(xs):
                    raise SchemaError(
                        f"attribute {col!r} has {len(arr)} rows, expected {len(xs)}"
                    )
                if not np.issubdtype(arr.dtype, np.number):
                    raise SchemaError(f"attribute {col!r} must be numeric")
                self.attributes[col] = arr

    # ------------------------------------------------------------------
    # Table protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.xs)

    @property
    def schema(self) -> Schema:
        cols = [ColumnSpec("x", np.float64), ColumnSpec("y", np.float64)]
        cols += [ColumnSpec(n, a.dtype) for n, a in self.attributes.items()]
        return Schema(cols)

    def column(self, name: str) -> np.ndarray:
        """Fetch a column by name; ``x``/``y`` are the locations."""
        if name == "x":
            return self.xs
        if name == "y":
            return self.ys
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have "
                f"{['x', 'y'] + list(self.attributes)}"
            ) from None

    @property
    def bbox(self) -> BBox:
        return BBox.of_points(self.xs, self.ys)

    def memory_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        """Bytes occupied by the named columns (all when None)."""
        names = ("x", "y") + tuple(self.attributes) if columns is None else columns
        return sum(self.column(n).nbytes for n in names)

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def take(self, index: np.ndarray | slice) -> "PointDataset":
        """A new dataset holding the selected rows."""
        return PointDataset(
            self.xs[index],
            self.ys[index],
            {n: a[index] for n, a in self.attributes.items()},
            name=self.name,
        )

    def head(self, n: int) -> "PointDataset":
        """The first ``n`` rows — how the scaling experiments grow inputs
        (the paper adds time intervals; the generators emit time-ordered
        rows so a prefix is the same operation)."""
        return self.take(slice(0, min(n, len(self))))

    def batches(self, rows_per_batch: int) -> Iterator["PointDataset"]:
        """Yield contiguous row ranges of at most ``rows_per_batch``."""
        if rows_per_batch < 1:
            raise SchemaError(f"batch size must be >= 1, got {rows_per_batch}")
        for start in range(0, len(self), rows_per_batch):
            yield self.take(slice(start, start + rows_per_batch))

    def concat(self, other: "PointDataset") -> "PointDataset":
        if set(self.attributes) != set(other.attributes):
            raise SchemaError("cannot concat datasets with different columns")
        return PointDataset(
            np.concatenate([self.xs, other.xs]),
            np.concatenate([self.ys, other.ys]),
            {
                n: np.concatenate([a, other.attributes[n]])
                for n, a in self.attributes.items()
            },
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"PointDataset({self.name!r}, {len(self)} rows, "
            f"attributes={list(self.attributes)})"
        )
