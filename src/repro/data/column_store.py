"""On-disk columnar store for larger-than-memory experiments.

The paper stores the taxi/Twitter data "as columns on disk" and, for the
Figure 13 experiments, streams it from SSD in chunks.  This module is that
substrate: one binary file per column plus a small JSON manifest, read back
through ``np.memmap`` so scans touch only the bytes they use.  The chunked
scan is the I/O path of the disk-resident benchmark; its read time is
accounted separately, mirroring the paper's processing-vs-total split.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.dataset import PointDataset
from repro.errors import StorageError

_MANIFEST = "manifest.json"


class ColumnStore:
    """A directory of column files with a JSON manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        manifest_path = self.root / _MANIFEST
        if not manifest_path.is_file():
            raise StorageError(f"no column store at {self.root}")
        try:
            manifest = json.loads(manifest_path.read_text())
            self.num_rows: int = int(manifest["num_rows"])
            self.name: str = manifest.get("name", self.root.name)
            self._dtypes: dict[str, np.dtype] = {
                col: np.dtype(spec) for col, spec in manifest["columns"].items()
            }
        except (KeyError, ValueError, TypeError) as exc:
            raise StorageError(f"malformed manifest in {self.root}: {exc}") from exc
        for col in self._dtypes:
            if not (self.root / f"{col}.bin").is_file():
                raise StorageError(f"missing column file {col}.bin in {self.root}")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @classmethod
    def write(cls, root: str | Path, dataset: PointDataset) -> "ColumnStore":
        """Persist a dataset: one raw binary file per column."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        columns = {"x": dataset.xs, "y": dataset.ys, **dataset.attributes}
        for col, arr in columns.items():
            arr = np.ascontiguousarray(arr)
            arr.tofile(root / f"{col}.bin")
        manifest = {
            "name": dataset.name,
            "num_rows": len(dataset),
            "columns": {col: str(arr.dtype) for col, arr in columns.items()},
        }
        (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
        return cls(root)

    @classmethod
    def append_chunks(
        cls,
        root: str | Path,
        chunks: Iterator[PointDataset],
        name: str = "points",
    ) -> "ColumnStore":
        """Stream-write a store from dataset chunks without holding all rows.

        Used to build disk-resident inputs larger than comfortable RAM.
        All chunks must share a schema.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        num_rows = 0
        dtypes: dict[str, str] | None = None
        handles: dict[str, object] = {}
        try:
            for chunk in chunks:
                columns = {"x": chunk.xs, "y": chunk.ys, **chunk.attributes}
                if dtypes is None:
                    dtypes = {c: str(a.dtype) for c, a in columns.items()}
                    handles = {
                        c: open(root / f"{c}.bin", "wb") for c in columns
                    }
                elif set(columns) != set(dtypes):
                    raise StorageError("chunk schema changed mid-stream")
                for col, arr in columns.items():
                    np.ascontiguousarray(arr).tofile(handles[col])
                num_rows += len(chunk)
        finally:
            for handle in handles.values():
                handle.close()
        if dtypes is None:
            raise StorageError("no chunks were written")
        manifest = {"name": name, "num_rows": num_rows, "columns": dtypes}
        (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
        return cls(root)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._dtypes)

    def column_mmap(self, name: str) -> np.ndarray:
        """Memory-map one column (no data read until touched)."""
        if name not in self._dtypes:
            raise StorageError(f"unknown column {name!r} in {self.root}")
        return np.memmap(
            self.root / f"{name}.bin",
            dtype=self._dtypes[name],
            mode="r",
            shape=(self.num_rows,),
        )

    def scan(
        self,
        rows_per_chunk: int,
        columns: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[PointDataset, float]]:
        """Stream the store as (chunk, read_seconds) pairs.

        Each chunk's columns are physically copied out of the memmap (the
        disk read), and the copy time is reported so the caller can account
        I/O separately from processing — the Figure 13 breakdown.
        """
        if rows_per_chunk < 1:
            raise StorageError(f"chunk size must be >= 1, got {rows_per_chunk}")
        wanted = columns or self.column_names
        for col in ("x", "y"):
            if col not in wanted:
                wanted = (col,) + tuple(wanted)
        maps = {col: self.column_mmap(col) for col in wanted}
        total = self.num_rows if limit is None else min(limit, self.num_rows)
        for start in range(0, total, rows_per_chunk):
            end = min(start + rows_per_chunk, total)
            begin = time.perf_counter()
            arrays = {col: np.array(mm[start:end]) for col, mm in maps.items()}
            read_s = time.perf_counter() - begin
            attrs = {
                c: a for c, a in arrays.items() if c not in ("x", "y")
            }
            yield PointDataset(arrays["x"], arrays["y"], attrs, name=self.name), read_s

    @property
    def disk_bytes(self) -> int:
        return sum(
            (self.root / f"{col}.bin").stat().st_size for col in self._dtypes
        )

    def __repr__(self) -> str:
        return (
            f"ColumnStore({self.root}, {self.num_rows} rows, "
            f"columns={list(self._dtypes)})"
        )
