"""Synthetic NYC-taxi-like point workload.

Stand-in for the paper's 868M-trip NYC yellow-taxi dataset (2009–2013),
which is not available offline at that scale.  What the experiments
actually exercise is the data's *spatial skew* — "taxi trips are mostly
concentrated in Lower Manhattan, Midtown, and airports" (§7.1) — plus a
handful of numeric attributes to filter and aggregate on.  The generator
reproduces exactly that: a Gaussian-mixture of hotspots over an NYC-scale
planar extent with a uniform background, and per-trip attributes (hour,
passengers, distance, fare, tip) with plausible dependent distributions.

Rows are emitted in time order so that taking a prefix of the dataset
mirrors the paper's "increasing number of time intervals" input scaling.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PointDataset
from repro.geometry.bbox import BBox

#: NYC-like local planar extent in meters; matches
#: :data:`repro.data.regions.NYC_REGION_EXTENT` so taxi points fall inside
#: the synthetic neighborhood polygons.
NYC_EXTENT = BBox(0.0, 0.0, 45_000.0, 40_000.0)

#: Hotspots: (center fraction of extent, std dev in meters, weight).
#: Lower Manhattan, Midtown, and two airports, per §7.1's skew comment.
_HOTSPOTS = (
    ((0.38, 0.35), 1_800.0, 0.33),   # lower-Manhattan-like
    ((0.42, 0.48), 2_200.0, 0.30),   # midtown-like
    ((0.70, 0.30), 1_200.0, 0.12),   # JFK-like
    ((0.60, 0.55), 1_000.0, 0.10),   # LGA-like
)
_BACKGROUND_WEIGHT = 0.15


def generate_taxi(
    n: int,
    seed: int = 0,
    extent: BBox = NYC_EXTENT,
) -> PointDataset:
    """Generate ``n`` taxi-pickup-like rows.

    Attributes:

    ``hour``
        Pickup hour 0–23, bimodal around commute peaks.
    ``passengers``
        1–6, geometric-ish (mostly single riders).
    ``distance``
        Trip distance in km, log-normal.
    ``fare``
        Base + per-km fare with noise (correlated with distance).
    ``tip``
        Zero-inflated fraction of the fare.
    """
    rng = np.random.default_rng(seed)
    weights = np.asarray([w for _, _, w in _HOTSPOTS] + [_BACKGROUND_WEIGHT])
    weights = weights / weights.sum()
    component = rng.choice(len(weights), size=n, p=weights)

    xs = np.empty(n, dtype=np.float64)
    ys = np.empty(n, dtype=np.float64)
    for k, ((fx, fy), std, _w) in enumerate(_HOTSPOTS):
        mask = component == k
        m = int(mask.sum())
        cx = extent.xmin + fx * extent.width
        cy = extent.ymin + fy * extent.height
        xs[mask] = rng.normal(cx, std, m)
        ys[mask] = rng.normal(cy, std, m)
    background = component == len(_HOTSPOTS)
    m = int(background.sum())
    xs[background] = rng.uniform(extent.xmin, extent.xmax, m)
    ys[background] = rng.uniform(extent.ymin, extent.ymax, m)
    # Clamp stray gaussian tails into the extent (half-open safe margin).
    span_eps_x = 1e-6 * extent.width
    span_eps_y = 1e-6 * extent.height
    np.clip(xs, extent.xmin, extent.xmax - span_eps_x, out=xs)
    np.clip(ys, extent.ymin, extent.ymax - span_eps_y, out=ys)

    # Bimodal pickup hours: morning and evening commute peaks.
    peak = rng.random(n) < 0.65
    hour = np.where(
        peak,
        rng.choice([7, 8, 9, 17, 18, 19, 20], size=n),
        rng.integers(0, 24, size=n),
    ).astype(np.int32)

    passengers = np.minimum(1 + rng.geometric(0.6, size=n), 6).astype(np.int32)
    distance = np.exp(rng.normal(0.8, 0.7, size=n)).astype(np.float64)  # km
    fare = (2.5 + 1.9 * distance + rng.normal(0.0, 1.0, size=n)).clip(2.5)
    tips = np.where(
        rng.random(n) < 0.6,
        fare * rng.uniform(0.1, 0.3, size=n),
        0.0,
    )

    return PointDataset(
        xs,
        ys,
        {
            "hour": hour,
            "passengers": passengers,
            "distance": distance,
            "fare": fare.astype(np.float64),
            "tip": tips.astype(np.float64),
        },
        name="taxi",
    )
