"""Synthetic geo-tagged-Twitter-like point workload.

Stand-in for the paper's 2.29B-tweet USA feed: "there is a denser
concentration of tweets around large cities" (§7.1).  The generator places
population-weighted Gaussian clusters at large-city-like locations across a
continental extent, plus a diffuse rural background, and attaches the
attributes the paper mentions (timestamp bucket, favorite and retweet
counts).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PointDataset
from repro.geometry.bbox import BBox

#: Continental-US-like extent in meters; matches
#: :data:`repro.data.regions.USA_REGION_EXTENT`.
USA_EXTENT = BBox(0.0, 0.0, 4_500_000.0, 2_800_000.0)

#: (center fraction of extent, std dev in meters, population weight) —
#: laid out like the large metro areas: a dense northeast corridor, big
#: midwest/south/west-coast anchors.
_CITIES = (
    ((0.88, 0.62), 60_000.0, 0.17),   # NYC-like
    ((0.86, 0.55), 50_000.0, 0.07),   # Philadelphia-like
    ((0.84, 0.50), 55_000.0, 0.07),   # DC-like
    ((0.91, 0.70), 45_000.0, 0.05),   # Boston-like
    ((0.62, 0.64), 70_000.0, 0.10),   # Chicago-like
    ((0.48, 0.35), 80_000.0, 0.08),   # Dallas-like
    ((0.52, 0.25), 70_000.0, 0.07),   # Houston-like
    ((0.08, 0.42), 75_000.0, 0.12),   # LA-like
    ((0.05, 0.62), 55_000.0, 0.06),   # Bay-Area-like
    ((0.16, 0.78), 50_000.0, 0.04),   # Seattle-like
    ((0.30, 0.45), 60_000.0, 0.04),   # Denver-like
    ((0.72, 0.18), 65_000.0, 0.06),   # Miami-like
    ((0.70, 0.40), 55_000.0, 0.04),   # Atlanta-like
)
_BACKGROUND_WEIGHT = 0.13


def generate_twitter(
    n: int,
    seed: int = 0,
    extent: BBox = USA_EXTENT,
) -> PointDataset:
    """Generate ``n`` geo-tweet-like rows.

    Attributes:

    ``day``
        Day index 0–364 (uniform; prefix slicing = time scaling).
    ``favorites`` / ``retweets``
        Heavy-tailed engagement counts (mostly zero).
    """
    rng = np.random.default_rng(seed)
    weights = np.asarray([w for _, _, w in _CITIES] + [_BACKGROUND_WEIGHT])
    weights = weights / weights.sum()
    component = rng.choice(len(weights), size=n, p=weights)

    xs = np.empty(n, dtype=np.float64)
    ys = np.empty(n, dtype=np.float64)
    for k, ((fx, fy), std, _w) in enumerate(_CITIES):
        mask = component == k
        m = int(mask.sum())
        cx = extent.xmin + fx * extent.width
        cy = extent.ymin + fy * extent.height
        xs[mask] = rng.normal(cx, std, m)
        ys[mask] = rng.normal(cy, std, m)
    background = component == len(_CITIES)
    m = int(background.sum())
    xs[background] = rng.uniform(extent.xmin, extent.xmax, m)
    ys[background] = rng.uniform(extent.ymin, extent.ymax, m)
    np.clip(xs, extent.xmin, extent.xmax - 1e-6 * extent.width, out=xs)
    np.clip(ys, extent.ymin, extent.ymax - 1e-6 * extent.height, out=ys)

    day = rng.integers(0, 365, size=n).astype(np.int32)
    favorites = np.floor(
        np.exp(rng.normal(-1.0, 1.6, size=n))
    ).astype(np.int32).clip(0)
    retweets = np.floor(
        np.exp(rng.normal(-1.6, 1.5, size=n))
    ).astype(np.int32).clip(0)

    return PointDataset(
        xs,
        ys,
        {"day": day, "favorites": favorites, "retweets": retweets},
        name="twitter",
    )
