"""Synthetic polygon datasets (the paper's region relations).

The paper evaluates on NYC neighborhoods (260 polygons) and US counties
(3945 polygons), and for the polygon-scaling study generates synthetic
polygons itself (§7.4): build a Voronoi diagram over random points inside
the extent, then repeatedly merge random adjacent cells so the final set
mixes convex, concave, and generally complex shapes of varying sizes.

We reuse that exact generator both for the scaling study and as the stand-
in for the real region files (which are not available offline): a 260-
region set over the NYC-like extent plays the neighborhoods, a 3945-region
set over the US-like extent plays the counties.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Voronoi

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.clip import clip_polygon_to_rect, ring_area
from repro.geometry.polygon import Polygon, PolygonSet


def _clipped_voronoi_cells(points: np.ndarray, extent: BBox) -> list[np.ndarray]:
    """Voronoi cells of the points, clipped to the extent rectangle.

    scipy's Voronoi leaves boundary cells unbounded; mirroring the sites
    across all four extent edges closes every interior cell, after which a
    rectangle clip makes the cells partition the extent exactly — the
    "constrained Voronoi diagram" the paper's generator needs.
    """
    mirrored = [points]
    for axis, edge in ((0, extent.xmin), (0, extent.xmax),
                       (1, extent.ymin), (1, extent.ymax)):
        m = points.copy()
        m[:, axis] = 2.0 * edge - m[:, axis]
        mirrored.append(m)
    vor = Voronoi(np.concatenate(mirrored, axis=0))

    cells: list[np.ndarray] = []
    for site in range(len(points)):
        region = vor.regions[vor.point_region[site]]
        if -1 in region or len(region) < 3:
            raise GeometryError("mirroring failed to close a Voronoi cell")
        ring = vor.vertices[region]
        clipped = clip_polygon_to_rect(ring, extent)
        if len(clipped) < 3 or abs(ring_area(clipped)) <= 0:
            raise GeometryError("Voronoi cell degenerated under clipping")
        cells.append(clipped)
    return cells


def _cell_adjacency(cells: list[np.ndarray]) -> list[tuple[int, int]]:
    """Pairs of cells sharing at least one (quantized) edge."""

    def edge_keys(ring: np.ndarray):
        n = len(ring)
        for i in range(n):
            a = (round(ring[i, 0], 6), round(ring[i, 1], 6))
            b = (round(ring[(i + 1) % n, 0], 6), round(ring[(i + 1) % n, 1], 6))
            if a != b:
                yield (a, b) if a <= b else (b, a)

    seen: dict[tuple, int] = {}
    pairs: set[tuple[int, int]] = set()
    for idx, ring in enumerate(cells):
        for key in edge_keys(ring):
            other = seen.get(key)
            if other is not None and other != idx:
                pairs.add((other, idx) if other < idx else (idx, other))
            else:
                seen[key] = idx
    return sorted(pairs)


def _merge_cells(
    cells: list[np.ndarray], target: int, rng: np.random.Generator
) -> list[list[int]]:
    """Validated adjacent-cell merging down to ``target`` groups.

    Follows the paper's §7.4 procedure — "randomly chose two neighboring
    polygons and merged them into a single polygon, repeated until n
    polygons remained" — with one safeguard the paper leaves implicit: a
    merge whose union is not a simple polygon (it would pinch at a vertex
    or enclose a hole) is rejected and another pair is tried, so every
    region stays traceable.
    """
    pairs = _cell_adjacency(cells)
    parent = list(range(len(cells)))
    members: dict[int, list[int]] = {i: [i] for i in range(len(cells))}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    groups = len(cells)
    stagnant_sweeps = 0
    while groups > target and stagnant_sweeps < 4:
        order = rng.permutation(len(pairs))
        progressed = False
        for k in order:
            if groups <= target:
                break
            i, j = pairs[k]
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            union = members[ri] + members[rj]
            try:
                _trace_boundary(cells, union)
            except GeometryError:
                continue  # non-simple union: reject this merge
            parent[rj] = ri
            members[ri] = union
            del members[rj]
            groups -= 1
            progressed = True
        stagnant_sweeps = 0 if progressed else stagnant_sweeps + 1
    if groups > target:
        raise GeometryError(
            f"could not merge down to {target} regions (stuck at {groups})"
        )
    return list(members.values())


def _trace_boundary(cells: list[np.ndarray], group: list[int]) -> np.ndarray:
    """Outer boundary ring of a union of edge-adjacent cells.

    Boundary edges are those appearing in exactly one cell of the group
    (interior edges appear twice with opposite direction).  Chaining them
    end-to-end yields the outer ring; groups with holes are rare for
    Voronoi merges and rejected by the caller's validity check.
    """
    def key(pt: np.ndarray) -> tuple:
        return (round(float(pt[0]), 6), round(float(pt[1]), 6))

    edge_count: dict[tuple, int] = {}
    directed: dict[tuple, list[tuple]] = {}
    for idx in group:
        ring = cells[idx]
        n = len(ring)
        for i in range(n):
            a, b = key(ring[i]), key(ring[(i + 1) % n])
            if a == b:
                continue
            undirected = (a, b) if a <= b else (b, a)
            edge_count[undirected] = edge_count.get(undirected, 0) + 1
            directed.setdefault(a, []).append((a, b))

    boundary: dict[tuple, tuple] = {}
    for a, edges in directed.items():
        for (pa, pb) in edges:
            undirected = (pa, pb) if pa <= pb else (pb, pa)
            if edge_count[undirected] == 1:
                boundary[pa] = pb
    if not boundary:
        raise GeometryError("merged group has no boundary")
    start = next(iter(boundary))
    ring = [start]
    cur = boundary[start]
    guard = 0
    while cur != start:
        ring.append(cur)
        cur = boundary.get(cur)
        if cur is None:
            raise GeometryError("boundary chain broke (group with hole?)")
        guard += 1
        if guard > len(boundary) + 1:
            raise GeometryError("boundary chain did not close")
    if len(ring) != len(boundary):
        # Extra loops remain: the union has a hole or touches at a vertex.
        raise GeometryError("merged group is not simply connected")
    return np.asarray(ring, dtype=np.float64)


def generate_voronoi_regions(
    n: int,
    extent: BBox,
    seed: int = 0,
    cells_per_region: int = 4,
) -> PolygonSet:
    """The paper's §7.4 synthetic polygon generator.

    Generates ``cells_per_region * n`` random sites (the paper uses 4n),
    computes the constrained Voronoi diagram over the extent, then merges
    random adjacent cells until ``n`` regions remain.  Groups that merge
    into non-simply-connected unions are retried with fresh randomness.
    """
    if n < 1:
        raise GeometryError(f"need at least one region, got {n}")
    rng = np.random.default_rng(seed)
    for attempt in range(8):
        sites = np.column_stack(
            [
                rng.uniform(extent.xmin, extent.xmax, cells_per_region * n),
                rng.uniform(extent.ymin, extent.ymax, cells_per_region * n),
            ]
        )
        try:
            cells = _clipped_voronoi_cells(sites, extent)
            groups = _merge_cells(cells, n, rng)
            polygons = [Polygon(_trace_boundary(cells, g)) for g in groups]
            return PolygonSet(polygons)
        except GeometryError:
            continue
    raise GeometryError(f"failed to generate {n} regions after 8 attempts")


#: NYC-like extent in meters (a local planar frame ~45 km x 40 km, the
#: scale of the five boroughs).
NYC_REGION_EXTENT = BBox(0.0, 0.0, 45_000.0, 40_000.0)

#: Continental-US-like extent in meters (~4500 km x 2800 km).
USA_REGION_EXTENT = BBox(0.0, 0.0, 4_500_000.0, 2_800_000.0)


def generate_neighborhoods(seed: int = 0, n: int = 260) -> PolygonSet:
    """A 260-region stand-in for the NYC neighborhood polygons (Table 1)."""
    return generate_voronoi_regions(n, NYC_REGION_EXTENT, seed=seed)


def generate_counties(seed: int = 0, n: int = 3945) -> PolygonSet:
    """A 3945-region stand-in for the US county polygons (Table 1)."""
    return generate_voronoi_regions(n, USA_REGION_EXTENT, seed=seed)
