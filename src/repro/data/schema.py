"""Column schemas for point datasets.

A :class:`Schema` describes the columns of a point table: the two mandatory
location columns plus any number of numeric attributes (the ``a1, a2, ...``
of the paper's query template).  Schemas validate datasets on construction
and drive the byte accounting of the device-transfer model (each filter or
aggregate attribute adds to the per-point payload, which is what Figure 11
measures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnSpec:
    """One column: a name and a NumPy dtype."""

    name: str
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if not self.name:
            raise SchemaError("column name must be non-empty")

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


class Schema:
    """An ordered set of column specs with lookup by name."""

    def __init__(self, columns: list[ColumnSpec]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns = tuple(columns)
        self._by_name = {c.name: c for c in columns}

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {list(self._by_name)}"
            ) from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def row_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        """Per-row payload size for the given columns (all when None)."""
        specs = self._columns if columns is None else [self[n] for n in columns]
        return sum(c.itemsize for c in specs)

    def validate(self, arrays: dict[str, np.ndarray], length: int) -> None:
        """Check the arrays carry every column at the right length."""
        for spec in self._columns:
            if spec.name not in arrays:
                raise SchemaError(f"missing column {spec.name!r}")
            arr = arrays[spec.name]
            if len(arr) != length:
                raise SchemaError(
                    f"column {spec.name!r} has {len(arr)} rows, expected {length}"
                )

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype}" for c in self._columns)
        return f"Schema({cols})"
