"""Exception hierarchy for the raster-join library.

Every error raised by :mod:`repro` derives from :class:`RasterJoinError`, so
callers can catch the whole family with a single ``except`` clause while the
library keeps fine-grained types for programmatic handling.
"""

from __future__ import annotations


class RasterJoinError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(RasterJoinError):
    """An operation received geometry it cannot process."""


class InvalidPolygonError(GeometryError):
    """A polygon ring is degenerate, self-intersecting, or malformed."""


class TriangulationError(GeometryError):
    """Ear-clipping failed to triangulate a (presumably invalid) polygon."""


class SchemaError(RasterJoinError):
    """A dataset column is missing or has an incompatible dtype."""


class QueryError(RasterJoinError):
    """A spatial-aggregation query is malformed."""


class FilterError(QueryError):
    """A filter constraint references an unknown column or operator."""


class SqlError(QueryError):
    """The SQL frontend could not lex, parse, or plan a statement."""


class ServeError(RasterJoinError):
    """The concurrent serving layer could not accept or finish a query."""


class ServerOverloadedError(ServeError):
    """Admission control rejected a submission: the bounded queue is full.

    Raised synchronously by :meth:`repro.serve.Server.submit` so callers
    can shed load (retry with backoff, degrade, or fail fast) instead of
    piling requests onto a saturated server.
    """


class QueryTimeoutError(ServeError):
    """A served query did not produce its result within the deadline.

    The underlying execution is not interrupted — timing out only
    releases the waiter; the shared scan keeps running for any coalesced
    followers still waiting on it.
    """


class ServerClosedError(ServeError):
    """A submission arrived after :meth:`repro.serve.Server.close`."""


class ExecutionBackendError(RasterJoinError):
    """An execution backend was misconfigured or is unavailable."""


class DeviceError(RasterJoinError):
    """The simulated GPU device was misused."""


class OutOfDeviceMemoryError(DeviceError):
    """An allocation exceeded the simulated device capacity."""


class ResolutionError(RasterJoinError):
    """A framebuffer resolution or epsilon bound is out of range."""


class StorageError(RasterJoinError):
    """The on-disk column store encountered malformed data."""
