"""The reusable prepared-state artifact behind a :class:`QuerySession`.

A :class:`PreparedPolygons` bundles every piece of engine state that is a
pure function of (polygon geometry, render configuration):

* the triangulations of every polygon (Table 1's preprocessing cost);
* the polygon grid index used by the exact JoinPoint path;
* the canvas layout and its device-sized viewport tiles;
* per-tile conservative boundary masks (the accurate engine's Boundary
  FBO);
* per-tile, per-polygon covered-pixel indices (the polygon-pass raster,
  the GeoBlocks-style cached aggregation footprint).

Since PR 5 the artifact is **composed from per-polygon units**
(:class:`PolygonUnit`): each polygon carries its own content
fingerprint, triangulation, grid-cell list, per-tile outline pixels,
and per-tile raw coverage pieces, and the set-level arrays the engines
consume (the boundary mask, the boundary-excluded coverage lists, the
CSR grid) are cheap deterministic *compositions* of those units.  That
split is what makes single-polygon edits incremental: an edited set
reuses every unchanged polygon's unit verbatim and re-rasterizes only
the changed ones (see ``docs/incremental_edits.md``), while the
composed views stay bit-identical to a from-scratch build by
construction — composition replays the exact per-polygon loops the
direct builders run, in the same polygon order.

Artifacts are populated lazily: an engine fills in exactly the fields its
algorithm needs, on first use, and later executions with the same polygon
set and configuration skip the rebuild.  All fields are derived
deterministically from the polygon content, so an artifact built by one
engine instance is valid for any other instance with the same spec.
Artifacts built *without* a session (``key is None``) skip the unit
bookkeeping entirely — the throwaway path stays as cheap as before.
"""

from __future__ import annotations

import hashlib
import time
from typing import Sequence

import numpy as np

from repro.geometry.polygon import Polygon, PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.index.grid import GridIndex


def _hash_rings(digest, poly: Polygon) -> None:
    for ring in poly.rings:
        digest.update(len(ring).to_bytes(8, "little"))
        digest.update(np.ascontiguousarray(ring, dtype="<f8").tobytes())


def polygon_fingerprint(polygons: PolygonSet | Sequence[Polygon]) -> str:
    """Content hash of a polygon set: same geometry => same fingerprint.

    The fingerprint covers every ring's vertex coordinates and the polygon
    order, so two :class:`PolygonSet` objects with identical content hash
    identically while any vertex edit, insertion, deletion, or reordering
    produces a new key — the cache can never serve stale geometry.

    The hash is byte-stable across platforms: coordinates are hashed as
    canonical little-endian float64 buffers and lengths as little-endian
    integers, never as ``repr`` text or native-endian memory, so an
    artifact store populated on one machine addresses identically on any
    other.  (The on-disk key additionally folds in the format version and
    dtype tag — see :func:`repro.store.format.key_id`.)
    """
    digest = hashlib.blake2b(digest_size=16)
    polys = list(polygons)
    digest.update(len(polys).to_bytes(8, "little"))
    for poly in polys:
        _hash_rings(digest, poly)
    return digest.hexdigest()


def single_polygon_fingerprint(poly: Polygon) -> str:
    """Content hash of one polygon's geometry (order-free, set-free).

    This is the identity of a :class:`PolygonUnit`: two polygons with the
    same rings hash identically wherever they sit in whatever set, which
    is what lets an edited set adopt the unchanged polygons' prepared
    state from a sibling artifact.
    """
    digest = hashlib.blake2b(digest_size=16)
    _hash_rings(digest, poly)
    return digest.hexdigest()


def per_polygon_fingerprints(
    polygons: PolygonSet | Sequence[Polygon],
) -> list[str]:
    """Every polygon's :func:`single_polygon_fingerprint`, in order."""
    return [single_polygon_fingerprint(poly) for poly in polygons]


def fingerprint_details(
    polygons: PolygonSet | Sequence[Polygon],
) -> tuple[str, list[str]]:
    """(set fingerprint, per-polygon fingerprints) in one pass.

    The set fingerprint is byte-for-byte the one
    :func:`polygon_fingerprint` produces — existing cache and store keys
    stay addressable.
    """
    digest = hashlib.blake2b(digest_size=16)
    polys = list(polygons)
    digest.update(len(polys).to_bytes(8, "little"))
    per_poly: list[str] = []
    for poly in polys:
        _hash_rings(digest, poly)
        per_poly.append(single_polygon_fingerprint(poly))
    return digest.hexdigest(), per_poly


class PolygonUnit:
    """Per-polygon prepared state: everything derived from one polygon.

    Every field is a pure function of (this polygon's geometry, the
    shared frame — canvas/tile layout and grid extent), never of the
    other polygons, which is what makes units reusable across edits of
    the rest of the set:

    * ``triangles`` — this polygon's triangulation;
    * ``cells`` — the flat grid-cell ids this polygon registers in
      (under the entry's grid resolution/assignment/extent);
    * ``boundary[tile_idx]`` — ``(ix, iy)`` outline pixels on that tile
      (the polygon's contribution to the tile's boundary mask);
    * ``coverage[tile_idx]`` — raw covered-pixel pieces ``(iy, ix)`` on
      that tile, *before* boundary exclusion (exclusion depends on the
      whole set's outlines, so it is applied at composition time);
    * ``interior_cells`` / ``pip_cells`` / ``blocks`` — the aggregate
      pyramid's cell classification (see ``repro.cache.pyramid``):
      grid cells entirely inside this polygon, cells its boundary may
      touch (conservative), and the interior decomposed into
      hierarchical 2×2 blocks.  Like ``cells`` these depend only on
      this polygon and the grid frame, so edits to other polygons keep
      them; they re-derive lazily and are never persisted.

    A tile key being present means the tile was built for this unit —
    possibly with empty arrays (the polygon does not touch the tile).
    """

    __slots__ = ("fingerprint", "bbox", "triangles", "cells",
                 "boundary", "coverage", "interior_cells", "pip_cells",
                 "blocks")

    def __init__(self, fingerprint: str, bbox: tuple) -> None:
        self.fingerprint = fingerprint
        #: (xmin, ymin, xmax, ymax) of the polygon, recorded so an edit
        #: can tell which tiles the departing geometry touched.
        self.bbox = bbox
        self.triangles: list[np.ndarray] | None = None
        self.cells: np.ndarray | None = None
        self.boundary: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.coverage: dict[int, list] = {}
        self.interior_cells: np.ndarray | None = None
        self.pip_cells: np.ndarray | None = None
        self.blocks: list | None = None

    def clone(self) -> "PolygonUnit":
        """A unit sharing this one's (immutable) arrays but owning its
        tile dicts, so a derived artifact can build further tiles — or
        be budget-stripped — without mutating its sibling."""
        other = PolygonUnit(self.fingerprint, self.bbox)
        other.triangles = self.triangles
        other.cells = self.cells
        other.boundary = dict(self.boundary)
        other.coverage = dict(self.coverage)
        other.interior_cells = self.interior_cells
        other.pip_cells = self.pip_cells
        other.blocks = self.blocks
        return other


class PreparedPolygons:
    """Lazily-populated prepared state for one (polygon set, config) pair.

    ``key`` is ``(fingerprint, *engine_spec)`` when the artifact lives in a
    :class:`~repro.cache.session.QuerySession`, or ``None`` for the
    throwaway artifact an engine builds when it runs without a session
    (same code path, nothing retained, no per-polygon units).
    """

    __slots__ = (
        "key",
        "canvas",
        "tiles",
        "triangles",
        "grid",
        "boundary_masks",
        "coverage",
        "mbr_arrays",
        "pip_grid",
        "units",
        "polygon_fps",
        "source_bbox",
        "delta_parent",
        "delta_dirty",
        "grid_splice",
        "parent_map",
        "version",
        "triangulation_s",
        "index_build_s",
        "uses",
    )

    def __init__(self, key: tuple | None = None) -> None:
        self.key = key
        self.canvas = None
        self.tiles: list | None = None
        self.triangles: list[list[np.ndarray]] | None = None
        self.grid: GridIndex | None = None
        #: tile index -> boolean boundary mask of that viewport (composed)
        self.boundary_masks: dict[int, np.ndarray] = {}
        #: tile index -> [(polygon id, [per-piece (iy, ix) index arrays])]
        #: — the boundary-excluded, engine-consumed composition
        self.coverage: dict[int, list] = {}
        #: polygon MBRs as (xmin, xmax, ymin, ymax) column arrays
        self.mbr_arrays: tuple[np.ndarray, ...] | None = None
        #: boundary-cells-only CSR grid for the pyramid path's exact
        #: fallback — composed from the units' ``pip_cells`` (so a point
        #: in a cell *interior* to polygon A is never PIP-tested against
        #: A; the cached block already counted it).  Set-level, derived,
        #: never persisted; see :func:`repro.cache.pyramid.ensure_polygon_blocks`.
        self.pip_grid: GridIndex | None = None
        #: per-polygon units (None for sessionless throwaway artifacts)
        self.units: list[PolygonUnit] | None = None
        self.polygon_fps: list[str] | None = None
        #: (xmin, ymin, xmax, ymax) of the set at build time — the frame
        #: guard: a delta reuse is only valid when the edited set spans
        #: the same extent (same canvas, same grid extent).
        self.source_bbox: tuple | None = None
        #: provenance of a delta-derived artifact (for store journaling)
        self.delta_parent: tuple | None = None
        self.delta_dirty: list[int] | None = None
        #: transient CSR-splice source for a delta-derived artifact:
        #: ``(base grid, {dirty pid: old cell list})``.  Consumed (and
        #: cleared) by :meth:`ensure_grid`, never persisted or counted.
        self.grid_splice: tuple | None = None
        #: new pid -> parent pid (or -1 for rebuilt polygons)
        self.parent_map: list[int] | None = None
        #: bumped on every mutation; part of the content signature so
        #: sessions re-measure nbytes only when something changed.
        self.version = 0
        self.triangulation_s = 0.0
        self.index_build_s = 0.0
        self.uses = 0

    # ------------------------------------------------------------------
    # Unit bookkeeping
    # ------------------------------------------------------------------
    def init_units(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        fingerprints: Sequence[str],
    ) -> None:
        """Attach fresh per-polygon units (a cold, session-owned build)."""
        polys = list(polygons)
        self.units = [
            PolygonUnit(fp, _bbox_tuple(poly))
            for fp, poly in zip(fingerprints, polys)
        ]
        self.polygon_fps = list(fingerprints)
        box = polys[0].bbox
        for poly in polys[1:]:
            box = box.union(poly.bbox)
        self.source_bbox = (box.xmin, box.ymin, box.xmax, box.ymax)
        self.version += 1

    @classmethod
    def derive_from(
        cls,
        base: "PreparedPolygons",
        key: tuple,
        polygons: PolygonSet | Sequence[Polygon],
        fingerprints: Sequence[str],
    ) -> "PreparedPolygons":
        """A new artifact for an *edited* set, reusing the base's units.

        Unchanged polygons (matched by per-polygon fingerprint) adopt
        clones of the base units — triangulation, grid cells, outline
        pixels, and raw coverage all carry over.  Changed and added
        polygons get empty units; the engines rebuild exactly those.
        Composed views are carried only for tiles no edited polygon's
        geometry (old or new) touches, and only when polygon ids are
        positionally stable; everything else recomposes from units —
        cheap gathers, no rasterization.
        """
        polys = list(polygons)
        entry = cls(key)
        entry.canvas = base.canvas
        entry.tiles = base.tiles
        entry.polygon_fps = list(fingerprints)
        entry.source_bbox = base.source_bbox

        # Match new polygons to base units by content fingerprint.
        pool: dict[str, list[int]] = {}
        for pid, fp in enumerate(base.polygon_fps or ()):
            pool.setdefault(fp, []).append(pid)
        units: list[PolygonUnit] = []
        parent_map: list[int] = []
        dirty: list[int] = []
        for pid, (fp, poly) in enumerate(zip(fingerprints, polys)):
            matches = pool.get(fp)
            if matches:
                src = matches.pop(0)
                units.append(base.units[src].clone())
                parent_map.append(src)
            else:
                units.append(PolygonUnit(fp, _bbox_tuple(poly)))
                parent_map.append(-1)
                dirty.append(pid)
        entry.units = units
        entry.parent_map = parent_map
        entry.delta_dirty = dirty
        entry.delta_parent = base.key

        # Composed carry-over: only with stable ids (no insert/delete/
        # reorder — composed coverage encodes pids positionally) and only
        # for tiles untouched by any departing or arriving geometry.
        stable = len(units) == len(base.units) and all(
            src == pid or src < 0 for pid, src in enumerate(parent_map)
        )
        # CSR-splice source: with stable ids and a warm base grid, the
        # derived grid can be spliced from the base's CSR arrays — the
        # dirty pids' old cell lists are the entries to remove.  Falls
        # back to the full compose whenever any old list is missing.
        if (
            stable and dirty and base.grid is not None
            and all(base.units[pid].cells is not None for pid in dirty)
        ):
            entry.grid_splice = (
                base.grid,
                {pid: base.units[pid].cells for pid in dirty},
            )
        if stable and base.tiles is not None:
            replaced = {src for src in parent_map if src >= 0}
            changed_boxes = [
                base.units[pid].bbox for pid in range(len(base.units))
                if pid not in replaced
            ] + [units[pid].bbox for pid in dirty]
            empty = np.zeros(0, dtype=np.int64)
            for idx, tile in enumerate(base.tiles):
                if any(_boxes_intersect(b, tile.bbox) for b in changed_boxes):
                    continue
                mask = base.boundary_masks.get(idx)
                if mask is not None:
                    entry.boundary_masks[idx] = mask
                    # The rebuilt polygons' geometry misses this tile
                    # (that is what made it carriable), so their
                    # per-tile state is the empty contribution a build
                    # would produce — record it now, keeping the
                    # all-units-per-tile invariant that persistence and
                    # later compositions rely on.
                    for pid in dirty:
                        units[pid].boundary[idx] = (empty, empty)
                cov = base.coverage.get(idx)
                if cov is not None:
                    entry.coverage[idx] = cov
                    for pid in dirty:
                        units[pid].coverage[idx] = []
        entry.version += 1
        return entry

    # ------------------------------------------------------------------
    # Lazy builders (each runs at most once per artifact)
    # ------------------------------------------------------------------
    def ensure_triangles(self, polygons: PolygonSet, stats=None) -> list:
        """Triangulate every polygon once; later calls are free.

        With units attached, only polygons whose unit lacks a
        triangulation are rebuilt — the incremental path after an edit.
        """
        if self.triangles is None:
            start = time.perf_counter()
            if self.units is not None:
                for pid, unit in enumerate(self.units):
                    if unit.triangles is None:
                        unit.triangles = triangulate_polygon(polygons[pid])
                self.triangles = [unit.triangles for unit in self.units]
            else:
                self.triangles = [triangulate_polygon(p) for p in polygons]
            self.triangulation_s = time.perf_counter() - start
            if stats is not None:
                stats.triangulation_s += self.triangulation_s
            self.version += 1
        return self.triangles

    def ensure_grid(
        self,
        polygons: PolygonSet,
        resolution: int,
        assignment: str,
        stats=None,
    ) -> GridIndex:
        """Build the polygon grid index once; later calls are free.

        With units attached, per-polygon cell lists are computed only
        for polygons that lack them and the CSR arrays are *composed*
        from the per-polygon lists — the same two-pass scatter the
        direct constructor runs, so the index is bit-identical.
        """
        if self.grid is None:
            if self.units is not None:
                start = time.perf_counter()
                extent = GridIndex.default_extent(polygons)
                for pid, unit in enumerate(self.units):
                    if unit.cells is None:
                        unit.cells = GridIndex.cells_for_polygon(
                            polygons[pid], extent, resolution, assignment
                        )
                base = self._splice_base(resolution, assignment, extent)
                if base is not None:
                    # Delta edit over a warm sibling grid: splice the
                    # dirty polygons' cell slices in place of the full
                    # two-pass compose — bit-identical CSR arrays (see
                    # GridIndex.splice), O(touched slices) instead of
                    # O(total entries).
                    base_grid, old_cells = base
                    self.grid = base_grid.splice(
                        polygons,
                        {
                            pid: (old, self.units[pid].cells)
                            for pid, old in old_cells.items()
                        },
                    )
                    if stats is not None:
                        stats.extra["grid_spliced"] = len(old_cells)
                else:
                    self.grid = GridIndex.from_cells(
                        polygons,
                        [unit.cells for unit in self.units],
                        resolution=resolution,
                        assignment=assignment,
                        extent=extent,
                    )
                self.grid_splice = None
                self.index_build_s = time.perf_counter() - start
                self.grid.build_seconds = self.index_build_s
            else:
                self.grid = GridIndex(
                    polygons, resolution=resolution, assignment=assignment
                )
                self.index_build_s = self.grid.build_seconds
            if stats is not None:
                stats.index_build_s += self.index_build_s
            self.version += 1
        return self.grid

    def _splice_base(self, resolution: int, assignment: str, extent):
        """The validated CSR-splice source for :meth:`ensure_grid`.

        ``None`` unless the recorded base grid was built under exactly
        the requested frame (resolution, assignment mode, extent) — the
        spliced result must be bit-identical to a full compose, so any
        mismatch falls back to composing from per-polygon cell lists.
        """
        if self.grid_splice is None:
            return None
        base_grid, old_cells = self.grid_splice
        if (
            base_grid.resolution != resolution
            or base_grid.assignment != assignment
            or base_grid.extent != extent
        ):
            return None
        return base_grid, old_cells

    def ensure_mbr_arrays(self, polygons: PolygonSet) -> tuple[np.ndarray, ...]:
        """Columnar polygon MBRs for vectorized filter steps."""
        if self.mbr_arrays is None:
            boxes = [p.bbox for p in polygons]
            self.mbr_arrays = (
                np.asarray([b.xmin for b in boxes]),
                np.asarray([b.xmax for b in boxes]),
                np.asarray([b.ymin for b in boxes]),
                np.asarray([b.ymax for b in boxes]),
            )
            self.version += 1
        return self.mbr_arrays

    # ------------------------------------------------------------------
    # Per-tile composition (units path)
    # ------------------------------------------------------------------
    def missing_boundary_pids(self, tile_idx: int) -> list[int]:
        """Polygon ids whose unit lacks outline pixels for this tile."""
        return [
            pid for pid, unit in enumerate(self.units)
            if tile_idx not in unit.boundary
        ]

    def missing_coverage_pids(self, tile_idx: int) -> list[int]:
        """Polygon ids whose unit lacks raw coverage for this tile."""
        return [
            pid for pid, unit in enumerate(self.units)
            if tile_idx not in unit.coverage
        ]

    def compose_boundary(
        self, tile_idx: int, tile, built: dict | None = None
    ) -> np.ndarray:
        """OR every polygon's outline pixels into one tile mask.

        ``built`` supplies pixels for units not yet carrying this tile
        (a tile task's freshly rasterized dirty polygons).  The result is
        bit-identical to the direct whole-set render: the same pixels are
        set, and OR is order-free.
        """
        mask = np.zeros((tile.height, tile.width), dtype=bool)
        for pid, unit in enumerate(self.units):
            pix = unit.boundary.get(tile_idx)
            if pix is None and built is not None:
                pix = built.get(pid)
            if pix is None:
                continue
            ix, iy = pix
            if len(ix):
                mask[iy, ix] = True
        return mask

    def compose_coverage(
        self,
        tile_idx: int,
        boundary: np.ndarray | None,
        built: dict | None = None,
    ) -> list:
        """Assemble the engine-consumed coverage list from raw pieces.

        With a ``boundary`` mask, pixels under any polygon's outline are
        excluded (the accurate engine's rule — those points joined
        exactly); without one the raw pieces pass through unchanged (the
        bounded engine).  Exclusion filters each raw piece *in place of
        the piece's own row-major order*, which reproduces the direct
        builder's ``np.nonzero(mask & ~boundary)`` arrays exactly.
        """
        out: list = []
        for pid, unit in enumerate(self.units):
            pieces = unit.coverage.get(tile_idx)
            if pieces is None and built is not None:
                pieces = built.get(pid)
            if not pieces:
                continue
            kept: list = []
            for piece_iy, piece_ix in pieces:
                if boundary is None:
                    kept.append((piece_iy, piece_ix))
                    continue
                excluded = boundary[piece_iy, piece_ix]
                if not excluded.any():
                    kept.append((piece_iy, piece_ix))
                else:
                    keep = ~excluded
                    if keep.any():
                        kept.append((piece_iy[keep], piece_ix[keep]))
            if kept:
                out.append((pid, kept))
        return out

    def install_unit_boundary(self, tile_idx: int, built: dict) -> None:
        """Adopt freshly built per-polygon outline pixels for one tile."""
        for pid, pix in built.items():
            self.units[pid].boundary[tile_idx] = pix
        if built:
            self.version += 1

    def install_unit_coverage(self, tile_idx: int, built: dict) -> None:
        """Adopt freshly built per-polygon raw coverage for one tile."""
        for pid, pieces in built.items():
            self.units[pid].coverage[tile_idx] = pieces
        if built:
            self.version += 1

    def mark_composed(self, tile_idx: int, boundary=None, coverage=None) -> None:
        """Install composed per-tile views (parent side of the merge)."""
        if boundary is not None and tile_idx not in self.boundary_masks:
            self.boundary_masks[tile_idx] = boundary
            self.version += 1
        if coverage is not None and tile_idx not in self.coverage:
            self.coverage[tile_idx] = coverage
            self.version += 1

    @property
    def rebuilt_polygons(self) -> int | None:
        """How many polygons this artifact had to rebuild, or ``None``
        when it was not produced by a delta derivation."""
        if self.delta_dirty is None:
            return None
        return len(self.delta_dirty)

    # ------------------------------------------------------------------
    # Tiered demotion support
    # ------------------------------------------------------------------
    @property
    def has_derived(self) -> bool:
        """Whether the artifact carries re-derivable render state.

        Boundary masks and coverage (composed *and* per-unit) are pure
        functions of the fields that remain after stripping them (tiles,
        triangles), so they are the first tier a byte-budgeted session
        gives back.
        """
        if self.boundary_masks or self.coverage:
            return True
        if self.units is not None:
            return any(u.boundary or u.coverage for u in self.units)
        return False

    def strip_derived(self) -> int:
        """Drop boundary and coverage state, returning the bytes freed.

        The artifact becomes *partial*: triangles, grid cells, canvas,
        and MBRs stay hot while the (much larger) per-pixel state — both
        the composed views and the per-unit raw arrays — is released.
        Engines re-derive the dropped pieces lazily, tile by tile, and
        the re-derived arrays are bit-identical to the dropped ones.
        """
        before = self.nbytes
        self.boundary_masks = {}
        self.coverage = {}
        if self.units is not None:
            for unit in self.units:
                unit.boundary = {}
                unit.coverage = {}
        self.version += 1
        return before - self.nbytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def content_signature(self) -> tuple:
        """O(1) proxy for "has the artifact changed since I last looked".

        ``version`` bumps on every mutation routed through the artifact's
        methods; the structural fields guard the few legacy paths that
        poke dicts directly.  Equal signatures imply equal ``nbytes``, so
        sessions skip the (expensive) byte walk for unchanged entries.
        """
        return (
            self.version,
            self.canvas is not None,
            self.tiles is not None,
            self.triangles is not None,
            self.grid is not None,
            self.mbr_arrays is not None,
            len(self.boundary_masks),
            len(self.coverage),
        )

    @property
    def nbytes(self) -> int:
        """Approximate artifact footprint (for capacity decisions).

        Arrays shared between the per-unit raw state and the composed
        views (pieces that survive exclusion untouched, and the whole
        coverage of boundary-free engines) are counted once, by object
        identity.
        """
        seen: set[int] = set()
        total = 0

        def add(arr) -> None:
            nonlocal total
            if id(arr) not in seen:
                seen.add(id(arr))
                total += arr.nbytes

        if self.triangles is not None:
            for tris in self.triangles:
                for t in tris:
                    add(t)
        if self.grid is not None:
            add(self.grid.cell_start)
            add(self.grid.entries)
        for mask in self.boundary_masks.values():
            add(mask)
        for entries in self.coverage.values():
            for _, pieces in entries:
                for iy, ix in pieces:
                    add(iy)
                    add(ix)
        if self.mbr_arrays is not None:
            for arr in self.mbr_arrays:
                add(arr)
        if self.pip_grid is not None:
            add(self.pip_grid.cell_start)
            add(self.pip_grid.entries)
        if self.units is not None:
            for unit in self.units:
                if unit.triangles is not None:
                    for t in unit.triangles:
                        add(t)
                if unit.cells is not None:
                    add(unit.cells)
                if unit.interior_cells is not None:
                    add(unit.interior_cells)
                if unit.pip_cells is not None:
                    add(unit.pip_cells)
                if unit.blocks is not None:
                    for _, ids in unit.blocks:
                        add(ids)
                for ix, iy in unit.boundary.values():
                    add(ix)
                    add(iy)
                for pieces in unit.coverage.values():
                    for iy, ix in pieces:
                        add(iy)
                        add(ix)
        return total

    def __repr__(self) -> str:
        parts = []
        if self.triangles is not None:
            parts.append("triangles")
        if self.grid is not None:
            parts.append("grid")
        if self.canvas is not None:
            parts.append("canvas")
        if self.boundary_masks:
            parts.append(f"boundary x{len(self.boundary_masks)}")
        if self.coverage:
            parts.append(f"coverage x{len(self.coverage)}")
        if self.mbr_arrays is not None:
            parts.append("mbrs")
        if self.units is not None:
            parts.append(f"units x{len(self.units)}")
        body = ", ".join(parts) or "empty"
        return f"PreparedPolygons({body}, uses={self.uses})"


def _bbox_tuple(poly: Polygon) -> tuple:
    box = poly.bbox
    return (box.xmin, box.ymin, box.xmax, box.ymax)


def _boxes_intersect(box: tuple, bbox) -> bool:
    """Whether a (xmin, ymin, xmax, ymax) tuple intersects a BBox."""
    xmin, ymin, xmax, ymax = box
    return not (
        xmax < bbox.xmin or xmin > bbox.xmax
        or ymax < bbox.ymin or ymin > bbox.ymax
    )
