"""The reusable per-polygon-set artifact behind a :class:`QuerySession`.

A :class:`PreparedPolygons` bundles every piece of engine state that is a
pure function of (polygon geometry, render configuration):

* the triangulations of every polygon (Table 1's preprocessing cost);
* the polygon grid index used by the exact JoinPoint path;
* the canvas layout and its device-sized viewport tiles;
* per-tile conservative boundary masks (the accurate engine's Boundary
  FBO);
* per-tile, per-polygon covered-pixel indices (the polygon-pass raster,
  the GeoBlocks-style cached aggregation footprint).

Artifacts are populated lazily: an engine fills in exactly the fields its
algorithm needs, on first use, and later executions with the same polygon
set and configuration skip the rebuild.  All fields are derived
deterministically from the polygon content, so an artifact built by one
engine instance is valid for any other instance with the same spec.
"""

from __future__ import annotations

import hashlib
import time
from typing import Sequence

import numpy as np

from repro.geometry.polygon import Polygon, PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.index.grid import GridIndex


def polygon_fingerprint(polygons: PolygonSet | Sequence[Polygon]) -> str:
    """Content hash of a polygon set: same geometry => same fingerprint.

    The fingerprint covers every ring's vertex coordinates and the polygon
    order, so two :class:`PolygonSet` objects with identical content hash
    identically while any vertex edit, insertion, deletion, or reordering
    produces a new key — the cache can never serve stale geometry.

    The hash is byte-stable across platforms: coordinates are hashed as
    canonical little-endian float64 buffers and lengths as little-endian
    integers, never as ``repr`` text or native-endian memory, so an
    artifact store populated on one machine addresses identically on any
    other.  (The on-disk key additionally folds in the format version and
    dtype tag — see :func:`repro.store.format.key_id`.)
    """
    digest = hashlib.blake2b(digest_size=16)
    polys = list(polygons)
    digest.update(len(polys).to_bytes(8, "little"))
    for poly in polys:
        for ring in poly.rings:
            digest.update(len(ring).to_bytes(8, "little"))
            digest.update(np.ascontiguousarray(ring, dtype="<f8").tobytes())
    return digest.hexdigest()


class PreparedPolygons:
    """Lazily-populated prepared state for one (polygon set, config) pair.

    ``key`` is ``(fingerprint, *engine_spec)`` when the artifact lives in a
    :class:`~repro.cache.session.QuerySession`, or ``None`` for the
    throwaway artifact an engine builds when it runs without a session
    (same code path, nothing retained).
    """

    __slots__ = (
        "key",
        "canvas",
        "tiles",
        "triangles",
        "grid",
        "boundary_masks",
        "coverage",
        "mbr_arrays",
        "triangulation_s",
        "index_build_s",
        "uses",
    )

    def __init__(self, key: tuple | None = None) -> None:
        self.key = key
        self.canvas = None
        self.tiles: list | None = None
        self.triangles: list[list[np.ndarray]] | None = None
        self.grid: GridIndex | None = None
        #: tile index -> boolean boundary mask of that viewport
        self.boundary_masks: dict[int, np.ndarray] = {}
        #: tile index -> [(polygon id, [per-piece (iy, ix) index arrays])]
        self.coverage: dict[int, list] = {}
        #: polygon MBRs as (xmin, xmax, ymin, ymax) column arrays
        self.mbr_arrays: tuple[np.ndarray, ...] | None = None
        self.triangulation_s = 0.0
        self.index_build_s = 0.0
        self.uses = 0

    # ------------------------------------------------------------------
    # Lazy builders (each runs at most once per artifact)
    # ------------------------------------------------------------------
    def ensure_triangles(self, polygons: PolygonSet, stats=None) -> list:
        """Triangulate every polygon once; later calls are free."""
        if self.triangles is None:
            start = time.perf_counter()
            self.triangles = [triangulate_polygon(p) for p in polygons]
            self.triangulation_s = time.perf_counter() - start
            if stats is not None:
                stats.triangulation_s += self.triangulation_s
        return self.triangles

    def ensure_grid(
        self,
        polygons: PolygonSet,
        resolution: int,
        assignment: str,
        stats=None,
    ) -> GridIndex:
        """Build the polygon grid index once; later calls are free."""
        if self.grid is None:
            self.grid = GridIndex(
                polygons, resolution=resolution, assignment=assignment
            )
            self.index_build_s = self.grid.build_seconds
            if stats is not None:
                stats.index_build_s += self.grid.build_seconds
        return self.grid

    def ensure_mbr_arrays(self, polygons: PolygonSet) -> tuple[np.ndarray, ...]:
        """Columnar polygon MBRs for vectorized filter steps."""
        if self.mbr_arrays is None:
            boxes = [p.bbox for p in polygons]
            self.mbr_arrays = (
                np.asarray([b.xmin for b in boxes]),
                np.asarray([b.xmax for b in boxes]),
                np.asarray([b.ymin for b in boxes]),
                np.asarray([b.ymax for b in boxes]),
            )
        return self.mbr_arrays

    # ------------------------------------------------------------------
    # Tiered demotion support
    # ------------------------------------------------------------------
    @property
    def has_derived(self) -> bool:
        """Whether the artifact carries re-derivable render state.

        Boundary masks and coverage are pure functions of the fields that
        remain after stripping them (tiles, triangles), so they are the
        first tier a byte-budgeted session gives back.
        """
        return bool(self.boundary_masks) or bool(self.coverage)

    def strip_derived(self) -> int:
        """Drop boundary masks and coverage, returning the bytes freed.

        The artifact becomes *partial*: triangles, grid, canvas, and MBRs
        stay hot while the (much larger) per-pixel state is released.
        Engines re-derive the dropped pieces lazily, tile by tile, and
        the re-derived arrays are bit-identical to the dropped ones.
        """
        before = self.nbytes
        self.boundary_masks = {}
        self.coverage = {}
        return before - self.nbytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def content_signature(self) -> tuple:
        """O(1) proxy for "has the artifact changed since I last looked".

        Within one cache key the contents are deterministic and fields
        only ever appear (or vanish wholesale via :meth:`strip_derived`),
        so which fields are present — plus the per-tile dict sizes — pins
        the content: equal signatures imply equal ``nbytes``.  Sessions
        use this to skip the (expensive) byte walk for unchanged entries.
        """
        return (
            self.canvas is not None,
            self.tiles is not None,
            self.triangles is not None,
            self.grid is not None,
            self.mbr_arrays is not None,
            len(self.boundary_masks),
            len(self.coverage),
        )

    @property
    def nbytes(self) -> int:
        """Approximate artifact footprint (for capacity decisions)."""
        total = 0
        if self.triangles is not None:
            total += sum(t.nbytes for tris in self.triangles for t in tris)
        if self.grid is not None:
            total += self.grid.memory_bytes
        for mask in self.boundary_masks.values():
            total += mask.nbytes
        for entries in self.coverage.values():
            for _, pieces in entries:
                total += sum(iy.nbytes + ix.nbytes for iy, ix in pieces)
        if self.mbr_arrays is not None:
            total += sum(arr.nbytes for arr in self.mbr_arrays)
        return total

    def __repr__(self) -> str:
        parts = []
        if self.triangles is not None:
            parts.append("triangles")
        if self.grid is not None:
            parts.append("grid")
        if self.canvas is not None:
            parts.append("canvas")
        if self.boundary_masks:
            parts.append(f"boundary x{len(self.boundary_masks)}")
        if self.coverage:
            parts.append(f"coverage x{len(self.coverage)}")
        if self.mbr_arrays is not None:
            parts.append("mbrs")
        body = ", ".join(parts) or "empty"
        return f"PreparedPolygons({body}, uses={self.uses})"
