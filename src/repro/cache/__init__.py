"""Prepared-state caching for repeated-query workloads.

The paper's target workload is *interactive*: an analyst redraws or
rezones polygons and re-runs the same query shape many times.  Most of the
per-query cost of the raster-join engines is, however, a pure function of
the polygon set and the render configuration — triangulations, the polygon
grid index, the canvas layout, per-tile boundary masks, and per-polygon
pixel coverage.  This package separates that one-time geometry preparation
from per-query execution (in the spirit of GeoBlocks' query-cache
accelerated aggregation):

* :class:`~repro.cache.prepared.PreparedPolygons` — the reusable artifact,
  keyed by a content fingerprint of the polygon set plus the engine's
  render configuration, and composed of per-polygon
  :class:`~repro.cache.prepared.PolygonUnit` pieces so a single-polygon
  edit rebuilds one polygon's state instead of the whole set's (see
  ``docs/incremental_edits.md``);
* :class:`~repro.cache.session.QuerySession` — a tiered, byte-budgeted
  cache of prepared artifacts shared by every engine that accepts
  ``session=``, optionally backed by the persistent
  :class:`~repro.store.ArtifactStore` disk tier so a restarted process
  answers repeated queries warm.

See ``docs/query_sessions.md`` for the API contract and the cache
invalidation rules, and ``docs/artifact_store.md`` for the disk tier.
"""

from repro.cache.prepared import (
    PolygonUnit,
    PreparedPolygons,
    fingerprint_details,
    per_polygon_fingerprints,
    polygon_fingerprint,
    single_polygon_fingerprint,
)
from repro.cache.session import QuerySession, Warmth

__all__ = [
    "PolygonUnit",
    "PreparedPolygons",
    "QuerySession",
    "Warmth",
    "fingerprint_details",
    "per_polygon_fingerprints",
    "polygon_fingerprint",
    "single_polygon_fingerprint",
]
