"""A tiered cache of prepared polygon artifacts shared across queries.

Pass one :class:`QuerySession` to every engine (or to the SQL planner /
optimizer, which forward it) and repeated queries over the same polygon
set reuse triangulations, grid indexes, canvas layouts, boundary masks,
and polygon coverage instead of rebuilding them:

    session = QuerySession()
    engine = AccurateRasterJoin(resolution=1024, session=session)
    engine.execute(points, zones)          # cold: builds prepared state
    engine.execute(points, zones)          # warm: prepared-state hit

The session is *tiered* (see ``docs/artifact_store.md``):

1. **Memory, full** — the artifact with every derived field hot.
2. **Memory, partial** — under byte-budget pressure the coverage arrays
   and boundary masks of cold entries are dropped (they re-derive
   lazily, bit-identically); triangles and the grid index stay hot.
3. **Disk** — with an :class:`~repro.store.ArtifactStore` attached (or
   ``$REPRO_STORE_DIR`` set), entries leaving memory are *demoted* to
   the store instead of dropped, and lookups that miss memory consult
   the store before rebuilding — which is how a restarted process
   answers its first repeated query warm.
4. **Rebuild** — a miss everywhere builds from scratch, exactly the
   sessionless code path.

Invalidation rules (see ``docs/query_sessions.md`` and
``docs/incremental_edits.md``):

* entries are keyed by a *content fingerprint* of the polygon geometry
  plus the engine's render spec, so editing a polygon set (or passing a
  different one) can never hit a stale entry — it simply keys a new one;
* an edited set whose frame (overall extent) matches a resident sibling
  is **delta-derived** instead of cold-built: unchanged polygons adopt
  the sibling's per-polygon units and only the changed/added polygons'
  artifacts rebuild (``prepared_for`` returns ``"delta"``) — through
  the batched raster builders (``docs/rasterization.md``) when those
  are enabled, and with the sibling's CSR grid *spliced* in place of a
  full recompose when polygon ids are stable
  (:meth:`repro.index.grid.GridIndex.splice`);
* the session holds at most ``capacity`` artifacts (and at most
  ``byte_budget`` bytes, when set), demoting the least recently used
  beyond that;
* :meth:`QuerySession.invalidate` drops in-memory entries eagerly when
  the caller wants memory back *now* (the store keeps its copies).

The session also caches the **tile-point partition** of recent point
sources (see :meth:`QuerySession.partition_lookup`): the partition
depends only on the points and the canvas frame, so repeated queries —
including every iteration of a rezoning edit loop — skip the per-query
partition scan entirely.

Results are bit-identical with and without a session, and with and
without the store: engines run the same reduction code over the same
arrays wherever those arrays came from.
"""

from __future__ import annotations

import functools
import hashlib
import os
import threading
import weakref
from collections import Counter, OrderedDict
from typing import Sequence

import numpy as np

from repro.cache.prepared import (
    PreparedPolygons,
    per_polygon_fingerprints,
    polygon_fingerprint,
)
from repro.data.dataset import PointDataset
from repro.errors import QueryError
from repro.exec import shm as shm_tier
from repro.geometry.polygon import Polygon, PolygonSet
from repro.obs import metrics


#: Live sessions whose locks must be re-armed in forked children — the
#: process execution backend forks mid-query by design, and a fork taken
#: while another thread holds a session lock would hand every child a
#: permanently-held lock (same hazard, and same fix, as GPUDevice's).
_LIVE_SESSIONS: "weakref.WeakSet[QuerySession]" = weakref.WeakSet()


def _rearm_session_locks_after_fork() -> None:  # pragma: no cover - fork path
    for session in _LIVE_SESSIONS:
        session._lock = threading.RLock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_rearm_session_locks_after_fork)


def _locked(method):
    """Serialize a public session method under the session's RLock.

    The serving layer multiplexes many concurrent queries over one warm
    session, so every entry point that reads or mutates the LRU dicts,
    the byte accounting, or the store tier takes one coarse re-entrant
    lock.  Re-entrant because public methods call each other (checkpoint
    runs maintenance, ``__repr__`` reads ``nbytes``); coarse because the
    critical sections are dict bookkeeping — the expensive work (raster
    builds, point passes) happens in the engines, outside the session.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


def _point_columns(source) -> tuple:
    """The column names a point source exposes (resident sets carry an
    explicit list; host datasets are locations + attributes)."""
    names = getattr(source, "column_names", None)
    if names is None:
        names = ("x", "y", *getattr(source, "attributes", {}))
    return tuple(names)


def _source_bytes(points) -> int:
    """Bytes of a point source's columns (what a strong ref pins)."""
    total = 0
    for name in _point_columns(points):
        try:
            total += points.column(name).nbytes
        except Exception:
            continue
    return total


def _partition_bytes(per_tile) -> int:
    """Approximate bytes of a partition's per-tile sub-chunk copies.

    Shared-memory chunks are counted **once per backing segment**: the
    segment is one host-wide allocation however many tiles reference it
    and however many worker processes map it, so charging it per
    appearance would make the budget evict partitions that fit.
    """
    total = 0
    seen_segments: set[str] = set()
    for chunks in per_tile:
        for chunk in chunks:
            segments = getattr(chunk, "segments", None)
            if segments is None:
                total += _source_bytes(chunk)
                continue
            fresh = [name for name in segments if name not in seen_segments]
            if not fresh:
                continue
            seen_segments.update(fresh)
            total += chunk.nbytes
    return total


class Warmth(str):
    """A warmth grade (``"full"`` / ``"partial"``) with a warm fraction.

    Compares equal to its plain-string grade, so existing callers keep
    working, while cache-aware costing reads ``fraction`` — the share of
    the query's polygons whose prepared state is already reusable.  An
    exact artifact hit has fraction 1.0; a delta-derivable sibling has
    the matched-polygon share, which is how a 1-of-200 edit plans like a
    warm query instead of a cold one.
    """

    __slots__ = ("fraction",)

    def __new__(cls, grade: str, fraction: float = 1.0) -> "Warmth":
        self = super().__new__(cls, grade)
        self.fraction = float(fraction)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Warmth({str(self)!r}, fraction={self.fraction:.3f})"


class QuerySession:
    """Tiered cache of :class:`PreparedPolygons`, shared by many engines.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory artifacts (LRU beyond it).
    byte_budget:
        Optional cap on the summed ``nbytes`` of in-memory artifacts
        (plain int or a ``"256M"``-style string).  Over budget, cached
        tile-point partitions are reclaimed first, then cold entries
        are stripped to partial artifacts and finally demoted out of
        memory entirely, LRU-first.  Accounting is per entry and
        therefore *conservative* for delta-derived siblings, which
        share most of their arrays with their base: the summed figure
        is an upper bound on real memory, so pressure may strip shared
        state early — a performance effect only, since stripped pieces
        re-derive bit-identically.  During a lookup the entry
        being handed out is protected; at the post-execution checkpoint
        nothing is — a budget smaller than one artifact demotes even the
        just-executed entry (it stays answerable through the store).
    store:
        The disk tier: an :class:`~repro.store.ArtifactStore`, a
        directory path, ``None`` to consult ``$REPRO_STORE_DIR``, or
        ``False`` to force-disable the disk tier.
    """

    def __init__(
        self,
        capacity: int = 8,
        byte_budget: int | str | None = None,
        store=None,
        partition_capacity: int = 4,
        pyramid_capacity: int = 2,
        shm: bool | None = None,
    ) -> None:
        if capacity < 1:
            raise QueryError(f"session capacity must be >= 1, got {capacity}")
        from repro.exec.backend import flag_from_env
        from repro.store import ArtifactStore, parse_bytes

        self.capacity = capacity
        self.byte_budget = parse_bytes(byte_budget)
        self.store = ArtifactStore.coerce(store)
        #: Whether this session's partition cache exports per-tile
        #: sub-chunks (and pinned point sources) as named shared-memory
        #: segments — the data half of the process backend's
        #: resident-worker mode.  ``None`` consults ``$REPRO_SHM``,
        #: defaulting to off.  Purely a performance decision; the chunks
        #: hold the same bytes wherever they live.
        self.shm = (
            flag_from_env(shm_tier.SHM_ENV_VAR, False) if shm is None else shm
        )
        #: ``id(points) -> (points, guard, ShmChunk)``: point sources
        #: pinned whole into the shm tier (see :meth:`shm_pin`), LRU.
        self._shm_pins: "OrderedDict[int, tuple]" = OrderedDict()
        #: How many tile-point partitions to retain (0 disables).  Each
        #: cached partition holds per-tile copies of the point columns,
        #: so the cap bounds that memory; entries are keyed by the point
        #: source's identity and evicted LRU.
        self.partition_capacity = partition_capacity
        self._partitions: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: How many aggregate pyramids to retain (0 disables the memory
        #: tier; the store tier still answers).  Keyed like partitions —
        #: by point-source identity plus the grid-frame token, validated
        #: by content hash — and evicted LRU.  Entries are
        #: ``(points, guard, token, pyramid, persisted_version)``.
        self.pyramid_capacity = pyramid_capacity
        self._pyramids: "OrderedDict[tuple, list]" = OrderedDict()
        #: Memoized content guards: ``id(points) -> (points, fold,
        #: guard)``.  See :meth:`_cached_guard`.
        self._guards: "OrderedDict[int, tuple]" = OrderedDict()
        self.pyramid_hits = 0
        self.pyramid_store_hits = 0
        #: set fingerprint -> per-polygon fingerprints (content-keyed,
        #: so it can never serve stale hashes).  One rezoning stroke
        #: probes warmth per candidate engine and then executes, each
        #: needing the same per-polygon hashes; this keeps that to one
        #: hashing pass per distinct geometry.
        self._fps_memo: "OrderedDict[str, list[str]]" = OrderedDict()
        self._entries: "OrderedDict[tuple, PreparedPolygons]" = OrderedDict()
        #: key -> artifact nbytes at the time it was last persisted.  An
        #: entry is dirty only while its in-memory content *exceeds* the
        #: persisted size: per key the content is deterministic and only
        #: ever shrinks by stripping derived state (which the disk copy
        #: keeps), so equal-or-smaller means the store already holds a
        #: superset and re-saving would write identical (or less) data.
        self._persisted: dict[tuple, int] = {}
        #: key -> nbytes at which the store rejected the artifact as
        #: larger than its whole disk budget; suppresses pointless
        #: re-serialization until the artifact grows past that size.
        self._unstorable: dict[tuple, int] = {}
        #: key -> (content signature, nbytes): the byte walk is O(all
        #: coverage pieces), so it runs only when an entry's O(1)
        #: signature says the content actually changed.
        self._sizes: dict[tuple, tuple[tuple, int]] = {}
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        #: Misses answered by delta derivation from a resident sibling
        #: (an edited polygon set), and the total polygons those
        #: derivations had to rebuild — ``polygons_rebuilt /
        #: (delta_hits x set size)`` is the effective edit fraction.
        self.delta_hits = 0
        self.polygons_rebuilt = 0
        self.partition_hits = 0
        self.demotions = 0
        self.partial_demotions = 0
        # One coarse re-entrant lock serializes every public entry point
        # (see _locked): concurrent serving threads share a session, and
        # unguarded OrderedDict mutation corrupts the LRU chains.
        self._lock = threading.RLock()
        _LIVE_SESSIONS.add(self)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @_locked
    def prepared_for(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> tuple[PreparedPolygons, str]:
        """The artifact for (polygons, spec), plus where it came from.

        ``spec`` is the engine's render configuration tuple — everything
        besides geometry that the artifact's contents depend on (engine
        kind, resolution/epsilon, grid resolution, tiling limit, ...).

        The second element is ``"memory"`` for an in-memory hit,
        ``"store"`` for a disk-tier hit (loaded and promoted back into
        memory), ``"delta"`` for an artifact derived from a resident
        sibling (only changed/added polygons will rebuild), or ``""``
        (falsy) for a miss that created a fresh artifact.
        """
        # The set fingerprint alone keys the lookup; per-polygon hashes
        # are computed only after a miss is established — folding them
        # into this pass (fingerprint_details) would double the hash
        # work of every warm hit to save one pass on the rare misses.
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            entry.uses += 1
            # A hit changes nothing the tiers care about — no new entry,
            # no bytes, no mutation since the last post-execution
            # checkpoint — so the warm path skips maintenance and stays
            # O(1), like the pre-store LRU.
            metrics.counter("session_prepared_lookups", result="hit")
            return entry, "memory"
        if self.store is not None:
            entry = self.store.load(key, polygons)
            if entry is not None:
                self._entries[key] = entry
                # Fresh from disk: identical bytes are already persisted,
                # so the next flush skips it unless it grows.
                self._persisted[key] = entry.nbytes
                self.store_hits += 1
                entry.uses += 1
                self._maintain(exclude=key)
                metrics.counter("session_prepared_lookups",
                                result="store_hit")
                return entry, "store"
        # Delta derivation: an edited set adopts a resident sibling's
        # unchanged per-polygon units instead of cold-building all of
        # them (see docs/incremental_edits.md).  The set fingerprint is
        # already in the key; the per-polygon hashes are computed only
        # on a miss (the new entry needs them anyway, to seed future
        # derivations).
        fingerprints = self._per_polygon_fps(key[0], polygons)
        if fingerprints:
            base, matched = self._find_delta_base(key, spec, fingerprints,
                                                  polygons)
            if base is not None:
                entry = PreparedPolygons.derive_from(base, key, polygons,
                                                     fingerprints)
                self._entries[key] = entry
                self.misses += 1
                self.delta_hits += 1
                self.polygons_rebuilt += len(entry.delta_dirty)
                entry.uses += 1
                self._maintain(exclude=key)
                metrics.counter("session_prepared_lookups",
                                result="delta_hit")
                return entry, "delta"
        entry = PreparedPolygons(key)
        if fingerprints:
            entry.init_units(polygons, fingerprints)
        # (An empty raw sequence — PolygonSet forbids it — gets the
        # plain pre-unit shell.)
        self._entries[key] = entry
        self.misses += 1
        self._maintain(exclude=key)
        metrics.counter("session_prepared_lookups", result="miss")
        return entry, ""

    def _find_delta_base(
        self,
        key: tuple,
        spec: tuple,
        fingerprints: list[str],
        polygons: PolygonSet | Sequence[Polygon],
    ) -> tuple[PreparedPolygons | None, int]:
        """The best resident sibling to derive an edited set from.

        A candidate must share the render spec and the *frame* — the
        set's overall extent, which pins the canvas layout and the grid
        extent every per-polygon artifact was computed under — and match
        at least one polygon by content fingerprint.  Among candidates
        the one reusing the most polygons wins (most recently used on
        ties).  The probe never touches LRU order or hit counters.
        """
        if isinstance(polygons, PolygonSet):
            box = polygons.bbox
        else:
            polys = list(polygons)
            box = polys[0].bbox
            for p in polys[1:]:
                box = box.union(p.bbox)
        bbox = (box.xmin, box.ymin, box.xmax, box.ymax)
        want = Counter(fingerprints)
        best: PreparedPolygons | None = None
        best_matched = 0
        for candidate_key in reversed(self._entries):
            if candidate_key == key or candidate_key[1:] != tuple(spec):
                continue
            candidate = self._entries[candidate_key]
            if candidate.units is None or candidate.polygon_fps is None:
                continue
            if candidate.source_bbox != bbox:
                continue
            # Multiset intersection — mirrors the pop-one-per-match
            # pairing derive_from performs, so duplicate fingerprints
            # (identical polygons) are never double-counted and the
            # match count can never exceed the query's polygon count.
            have = Counter(candidate.polygon_fps)
            matched = sum(
                min(count, have[fp]) for fp, count in want.items()
                if fp in have
            )
            if matched > best_matched:
                best, best_matched = candidate, matched
        return best, best_matched

    @_locked
    def contains(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> bool:
        """Whether an artifact exists for (polygons, spec) in memory or
        on disk — without touching LRU order, counters, or the files."""
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        if key in self._entries:
            return True
        return self.store is not None and self.store.contains(key)

    @_locked
    def warmth(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> "Warmth | None":
        """How warm (polygons, spec) is — without touching LRU order,
        counters, or mtimes.

        Returns a :class:`Warmth` — a string-compatible grade carrying a
        warm *fraction*:

        * ``"full"`` — the polygon pass replays stored coverage;
        * ``"partial"`` — triangulation/grid are reusable but coverage
          (and boundary masks) re-derive;
        * ``None`` — cold: nothing is reusable anywhere.

        The fraction is 1.0 for an exact artifact hit (in memory or on
        disk).  When the exact key misses but a resident sibling could
        seed a *delta derivation* (same spec, same frame, overlapping
        polygons), the grade reflects the sibling's state and the
        fraction is the share of this query's polygons the sibling
        already holds — cache-aware costing scales the preparation and
        polygon-pass terms by the share that actually rebuilds, so a
        1-of-200 edit plans like a warm query, not a cold one.

        A *resident* entry's grade is authoritative even when the disk
        copy is richer: lookups serve the memory entry as-is (promoting
        the full disk copy back would undo the byte budget that
        stripped it), so a partial entry really does re-rasterize — the
        grade reflects the execution that will happen, not the best
        artifact that exists somewhere.
        """
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        entry = self._entries.get(key)
        if entry is not None:
            grade = self._entry_grade(entry)
            return Warmth(grade) if grade else None
        if self.store is not None:
            fields = self.store.describe(key)
            if fields is not None:
                if "coverage" in fields:
                    return Warmth("full")
                if "triangles" in fields or "grid" in fields:
                    return Warmth("partial")
        # Exact miss: grade the best delta sibling fractionally.  The
        # per-polygon hashing runs only when a resident entry could
        # actually seed a derivation, so a truly cold costing probe
        # (the optimizer runs one per candidate engine) stays as cheap
        # as the pre-unit dict-and-manifest check.
        if not self._has_delta_candidates(key, spec):
            return None
        fingerprints = self._per_polygon_fps(key[0], polygons)
        if not fingerprints:
            return None
        base, matched = self._find_delta_base(key, spec, fingerprints,
                                              polygons)
        if base is not None and matched:
            grade = self._entry_grade(base)
            if grade:
                return Warmth(grade, matched / max(len(fingerprints), 1))
        return None

    def _per_polygon_fps(self, set_fingerprint: str, polygons) -> list[str]:
        """Per-polygon fingerprints, memoized by the *set* fingerprint.

        The memo key is itself a content hash, so a hit is always the
        hashes this exact geometry would produce; a stroke's warmth
        probes and its execution share one hashing pass.
        """
        cached = self._fps_memo.get(set_fingerprint)
        if cached is not None:
            self._fps_memo.move_to_end(set_fingerprint)
            return cached
        fingerprints = per_polygon_fingerprints(polygons)
        self._fps_memo[set_fingerprint] = fingerprints
        while len(self._fps_memo) > 16:
            self._fps_memo.popitem(last=False)
        return fingerprints

    def _has_delta_candidates(self, key: tuple, spec: tuple) -> bool:
        """Whether any resident entry could seed a delta derivation for
        this spec — an O(capacity) scan that gates the (much costlier)
        per-polygon hashing."""
        spec = tuple(spec)
        return any(
            candidate_key[1:] == spec and candidate_key != key
            and self._entries[candidate_key].units is not None
            for candidate_key in self._entries
        )

    @staticmethod
    def _entry_grade(entry: PreparedPolygons) -> str | None:
        """``"full"`` / ``"partial"`` / ``None`` for a resident entry."""
        if entry.coverage or (
            entry.units is not None
            and any(u.coverage for u in entry.units)
        ):
            return "full"
        if entry.triangles is not None or entry.grid is not None:
            return "partial"
        return None  # empty shell: execution rebuilds everything

    # ------------------------------------------------------------------
    # Tile-point partition cache
    # ------------------------------------------------------------------
    #: Bytes of cached partition state retained when the session has no
    #: ``byte_budget`` (with one, the budget governs instead).  The
    #: accounting covers everything a cached entry pins: the per-tile
    #: sub-chunk copies *and* the strong reference to the source
    #: dataset itself.  Bounds what a long-lived default session can
    #: hold; a partition larger than the cap is simply not cached.
    PARTITION_BYTE_CAP = 512 << 20

    @staticmethod
    def _partition_guard(points) -> str:
        """Content fingerprint of a point source (every column's bytes).

        The cache is *keyed* by the source's identity (an O(1) probe)
        but *validated* by this hash, so mutating a dataset's arrays in
        place between queries can never replay a stale partition — the
        same never-stale contract the polygon fingerprints give the
        prepared-state cache.  Hashing is a single pass over the column
        buffers, roughly an order of magnitude cheaper than the
        projection-and-bucketing scan a hit avoids.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(points).to_bytes(8, "little"))
        for name in _point_columns(points):
            arr = np.ascontiguousarray(points.column(name))
            digest.update(str(name).encode("utf-8"))
            digest.update(arr.dtype.str.encode("ascii"))
            digest.update(memoryview(arr).cast("B"))
        return digest.hexdigest()

    @staticmethod
    def _content_fold(points) -> tuple:
        """A cheap one-pass checksum of every column's bytes.

        Sum + XOR over the 64-bit words of each column buffer (plus the
        ragged byte tail), roughly an order of magnitude cheaper than
        the cryptographic guard.  Any realistic in-place mutation of a
        value flips bits in its word and changes at least one of the two
        reductions; it is the *revalidation trigger* for the memoized
        full guard, not a substitute for it.
        """
        fold: list = [len(points)]
        for name in _point_columns(points):
            arr = np.ascontiguousarray(points.column(name))
            data = arr.view(np.uint8).reshape(-1)
            words = data[: (data.size // 8) * 8].view(np.uint64)
            fold.append((
                str(name), arr.dtype.str, data.size,
                int(words.sum(dtype=np.uint64)) if words.size else 0,
                int(np.bitwise_xor.reduce(words)) if words.size else 0,
                int(data[words.size * 8:].sum(dtype=np.uint64)),
            ))
        return tuple(fold)

    def _cached_guard(self, points) -> str:
        """The content guard, memoized per source identity.

        ``_partition_guard`` reads every column byte through blake2b —
        correct, but a per-query pass over the whole point source, which
        would dominate the pyramid-warm path it is meant to validate
        (the pyramid's promise is that warm interiors touch *no* point
        data).  This memoizes the full hash keyed by the dataset's
        identity and revalidates it with :meth:`_content_fold`; the
        expensive hash is recomputed only when the fold sees the bytes
        change, so a mutated-in-place source still can never replay a
        stale pyramid.
        """
        fold = self._content_fold(points)
        cached = self._guards.get(id(points))
        if cached is not None and cached[0] is points and cached[1] == fold:
            self._guards.move_to_end(id(points))
            return cached[2]
        guard = self._partition_guard(points)
        self._guards[id(points)] = (points, fold, guard)
        self._guards.move_to_end(id(points))
        while len(self._guards) > max(self.pyramid_capacity, 2):
            self._guards.popitem(last=False)
        return guard

    @_locked
    def partition_lookup(self, points, token: tuple):
        """A cached ``(per_tile, duplicates)`` partition, or ``None``.

        ``token`` is the canvas/batching spec the partition was computed
        under (extent, canvas size, tiling limit, columns, per-tile FBO
        reservations, device); the partition depends on nothing else —
        in particular not on the polygons, so an edit loop keeps
        hitting.
        """
        key = (id(points),) + tuple(token)
        cached = self._partitions.get(key)
        if cached is None:
            return None
        held, guard, per_tile, duplicates, _ = cached
        if held is not points or guard != self._partition_guard(points):
            del self._partitions[key]
            return None
        self._partitions.move_to_end(key)
        self.partition_hits += 1
        metrics.counter("session_partition_hits")
        return per_tile, duplicates

    @_locked
    def partition_store(self, points, token: tuple, per_tile,
                        duplicates: int):
        """Retain a freshly computed partition (LRU-bounded).

        The entry keeps a strong reference to ``points`` — both to keep
        the identity key unambiguous and because the per-tile sub-chunks
        alias or copy its columns anyway.  The sub-chunk bytes are
        measured here so the byte budget — or, without one, the default
        :attr:`PARTITION_BYTE_CAP` — can see and reclaim them.

        Returns the (possibly transformed) ``per_tile`` the caller
        should consume: with the shm tier on, host sub-chunks are
        exported **once** here as shared-memory chunks — the very query
        that computed the partition already reads the shared segments,
        and every later query reuses them across the process boundary
        zero-copy.  Segment leases release when the chunks are dropped
        (LRU eviction, :meth:`invalidate`, or session GC) via their
        finalizers.
        """
        if self.shm:
            per_tile = [
                [
                    shm_tier.export_chunk(chunk)
                    if isinstance(chunk, PointDataset) else chunk
                    for chunk in chunks
                ]
                for chunks in per_tile
            ]
        if self.partition_capacity < 1:
            return per_tile
        nbytes = _partition_bytes(per_tile) + _source_bytes(points)
        cap = (
            self.byte_budget if self.byte_budget is not None
            else self.PARTITION_BYTE_CAP
        )
        if nbytes > cap:
            return per_tile  # caching it would immediately thrash the cap
        key = (id(points),) + tuple(token)
        self._partitions[key] = (
            points, self._partition_guard(points), per_tile, duplicates,
            nbytes,
        )
        self._partitions.move_to_end(key)
        while len(self._partitions) > self.partition_capacity or (
            len(self._partitions) > 1 and self.partition_nbytes > cap
        ):
            self._partitions.popitem(last=False)
        return per_tile

    @property
    @_locked
    def partition_nbytes(self) -> int:
        """Bytes held by cached per-tile partition sub-chunks."""
        return sum(entry[4] for entry in self._partitions.values())

    @_locked
    def shm_pin(self, points):
        """Pin a point source's columns into the shared-memory tier.

        Exports the full dataset once as a :class:`~repro.exec.shm.ShmChunk`
        so registered sources (the SQL planner's named tables, a serving
        layer's resident datasets) live in ``/dev/shm`` for the session's
        lifetime and every resident worker maps them instead of receiving
        pickled copies.  Memoized by source identity and content guard —
        re-pinning an unchanged source is free, while an edited-in-place
        source rolls the guard and re-exports.  Returns the chunk, or
        ``None`` when the shm tier is off.  Pins are LRU-bounded by the
        partition capacity and released on eviction or
        :meth:`invalidate`.
        """
        if not self.shm:
            return None
        guard = self._cached_guard(points)
        cached = self._shm_pins.get(id(points))
        if cached is not None and cached[0] is points and cached[1] == guard:
            self._shm_pins.move_to_end(id(points))
            metrics.counter("session_shm_pin", event="hit")
            return cached[2]
        if cached is not None:
            cached[2].release()
        chunk = shm_tier.export_chunk(points)
        self._shm_pins[id(points)] = (points, guard, chunk)
        self._shm_pins.move_to_end(id(points))
        metrics.counter("session_shm_pin", event="export")
        while len(self._shm_pins) > max(self.partition_capacity, 1):
            _, (_, _, old) = self._shm_pins.popitem(last=False)
            old.release()
        return chunk

    # ------------------------------------------------------------------
    # Aggregate-pyramid cache (see repro.cache.pyramid)
    # ------------------------------------------------------------------
    @_locked
    def pyramid_lookup(self, points, token: tuple):
        """A resident (or store-tier) aggregate pyramid, or ``None``.

        ``token`` is the grid-frame spec the pyramid was built under
        (grid extent, resolution, assignment) — the pyramid depends on
        nothing else about the query, in particular not on the polygons,
        so every pan/zoom stroke over the same frame keeps hitting.
        Memory entries are keyed by the source's identity and validated
        by its content hash (the partition cache's never-stale
        contract); the store tier is keyed by that hash directly, so a
        restarted process answers pyramid-warm from disk.  Never builds.
        """
        token = tuple(token)
        key = (id(points),) + token
        guard = None
        cached = self._pyramids.get(key)
        if cached is not None:
            held, held_guard, _, pyramid, _ = cached
            guard = self._cached_guard(points)
            if held is points and held_guard == guard:
                self._pyramids.move_to_end(key)
                self.pyramid_hits += 1
                pyramid.uses += 1
                metrics.counter("session_pyramid_lookups", result="hit")
                return pyramid
            del self._pyramids[key]
        if self.store is None:
            return None
        if guard is None:
            guard = self._cached_guard(points)
        pyramid = self.store.load_pyramid((guard,) + token)
        if pyramid is None:
            return None
        self.pyramid_store_hits += 1
        metrics.counter("session_pyramid_lookups", result="store_hit")
        self._pyramid_insert(points, guard, token, pyramid,
                             persisted_version=pyramid.version)
        return pyramid

    @_locked
    def pyramid_register(self, points, token: tuple, pyramid) -> None:
        """Retain an explicitly built pyramid (persisted at the next
        checkpoint when a store is attached)."""
        token = tuple(token)
        self._pyramid_insert(
            points, self._cached_guard(points), token, pyramid,
            persisted_version=-1,
        )

    @_locked
    def pyramid_warm(self, points, token: tuple) -> bool:
        """Cheap costing probe: is a pyramid resident for this source?

        Identity-keyed only — no content hashing, no store I/O, no LRU
        touch — so the optimizer can call it per candidate plan.
        Optimistic by design: a mutated-in-place source reads warm here
        but fails the content guard at execution, which costs one
        mispredicted plan, never a wrong result.
        """
        return ((id(points),) + tuple(token)) in self._pyramids

    def _pyramid_insert(self, points, guard: str, token: tuple, pyramid,
                        persisted_version: int) -> None:
        if self.pyramid_capacity < 1:
            return
        cap = (
            self.byte_budget if self.byte_budget is not None
            else self.PARTITION_BYTE_CAP
        )
        if pyramid.nbytes > cap:
            return
        key = (id(points),) + tuple(token)
        self._pyramids[key] = [points, guard, token, pyramid,
                               persisted_version]
        self._pyramids.move_to_end(key)
        while len(self._pyramids) > self.pyramid_capacity:
            self._flush_pyramid_entry(self._pyramids.popitem(last=False)[1])

    @property
    @_locked
    def pyramid_nbytes(self) -> int:
        """Bytes held by resident aggregate pyramids."""
        return sum(entry[3].nbytes for entry in self._pyramids.values())

    def _flush_pyramid_entry(self, entry: list) -> bool:
        """Persist one pyramid entry's channels if the store lacks them."""
        if self.store is None:
            return False
        _, guard, token, pyramid, persisted_version = entry
        if pyramid.version <= persisted_version or not pyramid.channels:
            return False
        from repro.store import ArtifactTooLargeError

        try:
            self.store.save_pyramid((guard,) + tuple(token), pyramid)
        except ArtifactTooLargeError:
            entry[4] = pyramid.version  # refused at this size: stop retrying
            return False
        except (TypeError, ValueError):
            entry[4] = pyramid.version
            return False
        except OSError:
            self.store.save_failures += 1
            return False
        entry[4] = pyramid.version
        return True

    def _flush_pyramids(self) -> int:
        """Persist every dirty resident pyramid (checkpoint hook)."""
        saved = 0
        for entry in self._pyramids.values():
            if self._flush_pyramid_entry(entry):
                saved += 1
        return saved

    # ------------------------------------------------------------------
    # Tier maintenance
    # ------------------------------------------------------------------
    @_locked
    def checkpoint(self) -> None:
        """Persist dirty artifacts and enforce both budgets.

        Engines call this after every execution, which makes the store
        write-through: by the time a query's result is returned, its
        prepared state is durable and a process restart answers the same
        query warm.  Unchanged artifacts are never re-written.
        """
        self._maintain(exclude=None)

    def _maintain(self, exclude: tuple | None) -> None:
        """Post-lookup/post-execution housekeeping.

        ``exclude`` protects the entry being handed out of a lookup.
        Artifact sizes are measured once per event (``nbytes`` walks
        every coverage piece, so it is the expensive part) and shared by
        the flush and both budget passes.  A session with neither a
        store nor a byte budget skips the measurement entirely — its
        warm hits stay O(1) as before, capacity eviction needs no sizes.
        """
        if self.store is None and self.byte_budget is None:
            self._enforce_capacity(exclude, {})
            return
        sizes = {
            key: self._entry_nbytes(key, entry)
            for key, entry in self._entries.items()
        }
        self._flush_dirty(sizes, exclude)
        self._flush_pyramids()
        self._enforce_capacity(exclude, sizes)
        self._enforce_byte_budget(exclude, sizes)

    def _entry_nbytes(self, key: tuple, entry: PreparedPolygons) -> int:
        """The entry's ``nbytes``, re-measured only when its content
        signature changed since the last measurement."""
        signature = entry.content_signature
        cached = self._sizes.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
        nbytes = entry.nbytes
        self._sizes[key] = (signature, nbytes)
        return nbytes

    def _is_dirty(self, key: tuple, nbytes: int) -> bool:
        """Whether the store lacks (a superset of) this entry's content.

        Grown content (``nbytes`` above the persisted size) is dirty;
        so is any non-empty entry whose on-disk pair has vanished
        underneath us (``store.clear()``, disk-budget eviction, another
        process) — the existence probe keeps the ``_persisted`` markers
        from silently turning demotion into data loss.
        """
        if nbytes == 0:
            return False
        if key in self._unstorable and nbytes >= self._unstorable[key]:
            # Refused at a size it still meets or exceeds: retrying is
            # guaranteed to fail.  An artifact that *shrank* below the
            # rejected size (a budget strip) falls through — the smaller
            # pair may fit the disk cap now.
            return False
        if nbytes > self._persisted.get(key, -1):
            return True
        return not self.store.contains(key)

    def _try_save(self, key: tuple, entry: PreparedPolygons,
                  nbytes: int) -> bool:
        """Best-effort persistence: a failing disk never fails a query.

        The query's result is already correct when persistence runs, so
        I/O errors (disk full, dead mount, permissions) only forfeit
        warmth: the entry stays dirty and the next checkpoint retries.
        An artifact the store *rejects* (bigger than the whole disk
        budget) is remembered as unstorable at that size, so checkpoints
        don't re-serialize it query after query.
        """
        from repro.store import ArtifactTooLargeError

        try:
            if (
                entry.delta_parent is not None
                and key not in self._persisted
            ):
                # First persistence of a delta-derived artifact: journal
                # a per-polygon patch against the parent's stored state
                # instead of rewriting the whole pair (the store falls
                # back to a full save when the parent isn't patchable or
                # compaction rules say the journal is long enough).
                self.store.save_patch(key, entry)
            else:
                self.store.save(key, entry)
        except ArtifactTooLargeError:
            self._unstorable[key] = nbytes
            return False
        except (TypeError, ValueError):
            # A spec value the format can't address (not JSON
            # serializable): the key is unstorable at any size — this
            # session serves it from memory only.
            self._unstorable[key] = nbytes
            return False
        except OSError:
            self.store.save_failures += 1
            return False
        self._persisted[key] = nbytes
        self._unstorable.pop(key, None)  # it fits after all (it shrank)
        return True

    def _flush_dirty(self, sizes: dict, exclude: tuple | None = None) -> int:
        if self.store is None:
            return 0
        saved = 0
        for key, entry in list(self._entries.items()):
            if key == exclude:
                # The entry being handed out of a lookup: it is about to
                # be (re)built by the caller's execution, so persisting
                # now would write a state the very next checkpoint
                # supersedes.  Delta-derived entries are born with
                # carried bytes, which made this skip matter.
                continue
            if not self._is_dirty(key, sizes[key]):
                continue  # empty (never executed) or already durable
            if self._try_save(key, entry, sizes[key]):
                saved += 1
        return saved

    def _demote(self, key: tuple, nbytes: int) -> None:
        """Move one entry out of memory, persisting it first if needed."""
        entry = self._entries.pop(key)
        if self.store is not None and self._is_dirty(key, nbytes):
            self._try_save(key, entry, nbytes)
        self._forget(key)
        self.demotions += 1
        metrics.counter("session_demotions", kind="full")

    def _forget(self, key: tuple) -> None:
        """Drop a departed key's bookkeeping.

        The side maps are keyed only by *resident* entries, so a
        long-lived serving session (every rezoning stroke keys a fresh
        fingerprint) stays bounded by ``capacity``.  Worst case of
        forgetting: one redundant save if the same key is ever rebuilt
        from scratch instead of re-entering through a store hit.
        """
        self._sizes.pop(key, None)
        self._persisted.pop(key, None)
        self._unstorable.pop(key, None)

    def _enforce_capacity(self, exclude: tuple | None, sizes: dict) -> None:
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k in self._entries if k != exclude), None
            )
            if victim is None:
                return
            self._demote(victim, sizes.get(victim, 0))

    def _enforce_byte_budget(self, exclude: tuple | None,
                             sizes: dict) -> None:
        if self.byte_budget is None:
            return
        total = sum(sizes[key] for key in self._entries)
        # Tier 0: cached tile-point partitions and aggregate pyramids
        # are pure re-derivable acceleration state — under pressure they
        # go first, LRU-first, so the budget really bounds the session's
        # whole footprint.  Dirty pyramids persist on the way out (the
        # store tier keeps answering pyramid-warm).
        while (
            self._pyramids
            and total + self.partition_nbytes + self.pyramid_nbytes
            > self.byte_budget
        ):
            self._flush_pyramid_entry(self._pyramids.popitem(last=False)[1])
            metrics.counter("session_evictions", tier="pyramid")
        while (
            self._partitions
            and total + self.partition_nbytes > self.byte_budget
        ):
            self._partitions.popitem(last=False)
            metrics.counter("session_evictions", tier="partition")
        if total <= self.byte_budget:
            return
        # Tier 1: strip re-derivable state (coverage, boundary masks)
        # from cold entries, keeping triangles and grid hot.  Full
        # artifacts are persisted first so the disk tier keeps coverage.
        for key in list(self._entries):
            if total <= self.byte_budget:
                return
            if key == exclude:
                continue
            entry = self._entries[key]
            if not entry.has_derived:
                continue
            if self.store is not None and self._is_dirty(key, sizes[key]):
                # Persist the *full* artifact before stripping, so the
                # disk tier keeps coverage.  ``_persisted`` stays at the
                # full size: the stripped entry reads as clean (the
                # store holds a superset) and lazy re-derivation — which
                # is bit-identical — reads as clean too, so repeated
                # budget-pressured queries never rewrite the pair.
                self._try_save(key, entry, sizes[key])
            freed = entry.strip_derived()
            sizes[key] -= freed
            total -= freed
            self.partial_demotions += 1
            metrics.counter("session_demotions", kind="partial")
        # Tier 2: demote whole entries to the store, LRU-first.
        for key in list(self._entries):
            if total <= self.byte_budget:
                return
            if key == exclude:
                continue
            total -= sizes[key]
            self._demote(key, sizes[key])

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    @_locked
    def invalidate(
        self, polygons: PolygonSet | Sequence[Polygon] | None = None
    ) -> int:
        """Drop cached in-memory artifacts, returning how many were
        removed.

        With ``polygons`` given, only entries for that geometry (any spec)
        are dropped; with ``None``, the whole session is cleared.  The
        disk tier is left intact — use ``session.store.clear()`` (or
        ``delete``) to reclaim disk space.
        """
        if polygons is None:
            removed = len(self._entries)
            for key in list(self._entries):
                self._forget(key)
            self._entries.clear()
            self._partitions.clear()
            self._pyramids.clear()
            for _, _, chunk in self._shm_pins.values():
                chunk.release()
            self._shm_pins.clear()
            return removed
        fingerprint = polygon_fingerprint(polygons)
        doomed = [key for key in self._entries if key[0] == fingerprint]
        for key in doomed:
            del self._entries[key]
            self._forget(key)
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @_locked
    def __len__(self) -> int:
        return len(self._entries)

    @property
    @_locked
    def nbytes(self) -> int:
        """Approximate bytes held by all in-memory artifacts."""
        return sum(entry.nbytes for entry in self._entries.values())

    @_locked
    def __repr__(self) -> str:
        body = (
            f"QuerySession({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"~{self.nbytes / 1e6:.1f} MB"
        )
        if self.delta_hits:
            body += (
                f", {self.delta_hits} delta hits "
                f"({self.polygons_rebuilt} polygons rebuilt)"
            )
        if self.byte_budget is not None:
            body += f" of {self.byte_budget / 1e6:.1f} MB budget"
        if self.store is not None:
            body += (
                f", store: {self.store_hits} hits, "
                f"{self.demotions} demotions"
            )
        return body + ")"
