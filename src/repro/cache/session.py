"""A bounded cache of prepared polygon artifacts shared across queries.

Pass one :class:`QuerySession` to every engine (or to the SQL planner /
optimizer, which forward it) and repeated queries over the same polygon
set reuse triangulations, grid indexes, canvas layouts, boundary masks,
and polygon coverage instead of rebuilding them:

    session = QuerySession()
    engine = AccurateRasterJoin(resolution=1024, session=session)
    engine.execute(points, zones)          # cold: builds prepared state
    engine.execute(points, zones)          # warm: prepared-state hit

Invalidation rules (see ``docs/query_sessions.md``):

* entries are keyed by a *content fingerprint* of the polygon geometry
  plus the engine's render spec, so editing a polygon set (or passing a
  different one) can never hit a stale entry — it simply keys a new one;
* the session holds at most ``capacity`` artifacts and evicts the least
  recently used beyond that;
* :meth:`QuerySession.invalidate` drops entries eagerly, for all polygon
  sets or one, when the caller wants memory back *now*.

Results are bit-identical with and without a session: engines run the
same reduction code over the same arrays either way.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.cache.prepared import PreparedPolygons, polygon_fingerprint
from repro.errors import QueryError
from repro.geometry.polygon import Polygon, PolygonSet


class QuerySession:
    """LRU cache of :class:`PreparedPolygons`, shared by many engines."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise QueryError(f"session capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, PreparedPolygons]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def prepared_for(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> tuple[PreparedPolygons, bool]:
        """The artifact for (polygons, spec), plus whether it was cached.

        ``spec`` is the engine's render configuration tuple — everything
        besides geometry that the artifact's contents depend on (engine
        kind, resolution/epsilon, grid resolution, tiling limit, ...).
        """
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            entry.uses += 1
            return entry, True
        entry = PreparedPolygons(key)
        self._entries[key] = entry
        self.misses += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry, False

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self, polygons: PolygonSet | Sequence[Polygon] | None = None
    ) -> int:
        """Drop cached artifacts, returning how many were removed.

        With ``polygons`` given, only entries for that geometry (any spec)
        are dropped; with ``None``, the whole session is cleared.
        """
        if polygons is None:
            removed = len(self._entries)
            self._entries.clear()
            return removed
        fingerprint = polygon_fingerprint(polygons)
        doomed = [key for key in self._entries if key[0] == fingerprint]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by all cached artifacts."""
        return sum(entry.nbytes for entry in self._entries.values())

    def __repr__(self) -> str:
        return (
            f"QuerySession({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"~{self.nbytes / 1e6:.1f} MB)"
        )
