"""A tiered cache of prepared polygon artifacts shared across queries.

Pass one :class:`QuerySession` to every engine (or to the SQL planner /
optimizer, which forward it) and repeated queries over the same polygon
set reuse triangulations, grid indexes, canvas layouts, boundary masks,
and polygon coverage instead of rebuilding them:

    session = QuerySession()
    engine = AccurateRasterJoin(resolution=1024, session=session)
    engine.execute(points, zones)          # cold: builds prepared state
    engine.execute(points, zones)          # warm: prepared-state hit

The session is *tiered* (see ``docs/artifact_store.md``):

1. **Memory, full** — the artifact with every derived field hot.
2. **Memory, partial** — under byte-budget pressure the coverage arrays
   and boundary masks of cold entries are dropped (they re-derive
   lazily, bit-identically); triangles and the grid index stay hot.
3. **Disk** — with an :class:`~repro.store.ArtifactStore` attached (or
   ``$REPRO_STORE_DIR`` set), entries leaving memory are *demoted* to
   the store instead of dropped, and lookups that miss memory consult
   the store before rebuilding — which is how a restarted process
   answers its first repeated query warm.
4. **Rebuild** — a miss everywhere builds from scratch, exactly the
   sessionless code path.

Invalidation rules (see ``docs/query_sessions.md``):

* entries are keyed by a *content fingerprint* of the polygon geometry
  plus the engine's render spec, so editing a polygon set (or passing a
  different one) can never hit a stale entry — it simply keys a new one;
* the session holds at most ``capacity`` artifacts (and at most
  ``byte_budget`` bytes, when set), demoting the least recently used
  beyond that;
* :meth:`QuerySession.invalidate` drops in-memory entries eagerly when
  the caller wants memory back *now* (the store keeps its copies).

Results are bit-identical with and without a session, and with and
without the store: engines run the same reduction code over the same
arrays wherever those arrays came from.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.cache.prepared import PreparedPolygons, polygon_fingerprint
from repro.errors import QueryError
from repro.geometry.polygon import Polygon, PolygonSet


class QuerySession:
    """Tiered cache of :class:`PreparedPolygons`, shared by many engines.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory artifacts (LRU beyond it).
    byte_budget:
        Optional cap on the summed ``nbytes`` of in-memory artifacts
        (plain int or a ``"256M"``-style string).  Over budget, cold
        entries are first stripped to partial artifacts and then demoted
        out of memory entirely, LRU-first.  During a lookup the entry
        being handed out is protected; at the post-execution checkpoint
        nothing is — a budget smaller than one artifact demotes even the
        just-executed entry (it stays answerable through the store).
    store:
        The disk tier: an :class:`~repro.store.ArtifactStore`, a
        directory path, ``None`` to consult ``$REPRO_STORE_DIR``, or
        ``False`` to force-disable the disk tier.
    """

    def __init__(
        self,
        capacity: int = 8,
        byte_budget: int | str | None = None,
        store=None,
    ) -> None:
        if capacity < 1:
            raise QueryError(f"session capacity must be >= 1, got {capacity}")
        from repro.store import ArtifactStore, parse_bytes

        self.capacity = capacity
        self.byte_budget = parse_bytes(byte_budget)
        self.store = ArtifactStore.coerce(store)
        self._entries: "OrderedDict[tuple, PreparedPolygons]" = OrderedDict()
        #: key -> artifact nbytes at the time it was last persisted.  An
        #: entry is dirty only while its in-memory content *exceeds* the
        #: persisted size: per key the content is deterministic and only
        #: ever shrinks by stripping derived state (which the disk copy
        #: keeps), so equal-or-smaller means the store already holds a
        #: superset and re-saving would write identical (or less) data.
        self._persisted: dict[tuple, int] = {}
        #: key -> nbytes at which the store rejected the artifact as
        #: larger than its whole disk budget; suppresses pointless
        #: re-serialization until the artifact grows past that size.
        self._unstorable: dict[tuple, int] = {}
        #: key -> (content signature, nbytes): the byte walk is O(all
        #: coverage pieces), so it runs only when an entry's O(1)
        #: signature says the content actually changed.
        self._sizes: dict[tuple, tuple[tuple, int]] = {}
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.demotions = 0
        self.partial_demotions = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def prepared_for(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> tuple[PreparedPolygons, str]:
        """The artifact for (polygons, spec), plus where it came from.

        ``spec`` is the engine's render configuration tuple — everything
        besides geometry that the artifact's contents depend on (engine
        kind, resolution/epsilon, grid resolution, tiling limit, ...).

        The second element is ``"memory"`` for an in-memory hit,
        ``"store"`` for a disk-tier hit (loaded and promoted back into
        memory), or ``""`` (falsy) for a miss that created a fresh
        artifact.
        """
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            entry.uses += 1
            # A hit changes nothing the tiers care about — no new entry,
            # no bytes, no mutation since the last post-execution
            # checkpoint — so the warm path skips maintenance and stays
            # O(1), like the pre-store LRU.
            return entry, "memory"
        if self.store is not None:
            entry = self.store.load(key, polygons)
            if entry is not None:
                self._entries[key] = entry
                # Fresh from disk: identical bytes are already persisted,
                # so the next flush skips it unless it grows.
                self._persisted[key] = entry.nbytes
                self.store_hits += 1
                entry.uses += 1
                self._maintain(exclude=key)
                return entry, "store"
        entry = PreparedPolygons(key)
        self._entries[key] = entry
        self.misses += 1
        self._maintain(exclude=key)
        return entry, ""

    def contains(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> bool:
        """Whether an artifact exists for (polygons, spec) in memory or
        on disk — without touching LRU order, counters, or the files."""
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        if key in self._entries:
            return True
        return self.store is not None and self.store.contains(key)

    def warmth(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        spec: tuple,
    ) -> str | None:
        """How warm (polygons, spec) is: ``"full"``, ``"partial"``, or
        ``None`` — without touching LRU order, counters, or mtimes.

        ``"full"`` means the polygon pass replays stored coverage;
        ``"partial"`` means triangulation/grid are reusable but coverage
        (and boundary masks) re-derive.  Cache-aware optimizer costing
        discounts exactly what each grade actually skips.  Invalid disk
        pairs grade ``None`` — costing then assumes (correctly) a cold
        rebuild.

        A *resident* entry's grade is authoritative even when the disk
        copy is richer: lookups serve the memory entry as-is (promoting
        the full disk copy back would undo the byte budget that
        stripped it), so a partial entry really does re-rasterize — the
        grade reflects the execution that will happen, not the best
        artifact that exists somewhere.
        """
        key = (polygon_fingerprint(polygons),) + tuple(spec)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.coverage:
                return "full"
            if entry.triangles is not None or entry.grid is not None:
                return "partial"
            return None  # empty shell: execution rebuilds everything
        if self.store is not None:
            fields = self.store.describe(key)
            if fields is not None:
                if "coverage" in fields:
                    return "full"
                if "triangles" in fields or "grid" in fields:
                    return "partial"
        return None

    # ------------------------------------------------------------------
    # Tier maintenance
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Persist dirty artifacts and enforce both budgets.

        Engines call this after every execution, which makes the store
        write-through: by the time a query's result is returned, its
        prepared state is durable and a process restart answers the same
        query warm.  Unchanged artifacts are never re-written.
        """
        self._maintain(exclude=None)

    def _maintain(self, exclude: tuple | None) -> None:
        """Post-lookup/post-execution housekeeping.

        ``exclude`` protects the entry being handed out of a lookup.
        Artifact sizes are measured once per event (``nbytes`` walks
        every coverage piece, so it is the expensive part) and shared by
        the flush and both budget passes.  A session with neither a
        store nor a byte budget skips the measurement entirely — its
        warm hits stay O(1) as before, capacity eviction needs no sizes.
        """
        if self.store is None and self.byte_budget is None:
            self._enforce_capacity(exclude, {})
            return
        sizes = {
            key: self._entry_nbytes(key, entry)
            for key, entry in self._entries.items()
        }
        self._flush_dirty(sizes)
        self._enforce_capacity(exclude, sizes)
        self._enforce_byte_budget(exclude, sizes)

    def _entry_nbytes(self, key: tuple, entry: PreparedPolygons) -> int:
        """The entry's ``nbytes``, re-measured only when its content
        signature changed since the last measurement."""
        signature = entry.content_signature
        cached = self._sizes.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
        nbytes = entry.nbytes
        self._sizes[key] = (signature, nbytes)
        return nbytes

    def _is_dirty(self, key: tuple, nbytes: int) -> bool:
        """Whether the store lacks (a superset of) this entry's content.

        Grown content (``nbytes`` above the persisted size) is dirty;
        so is any non-empty entry whose on-disk pair has vanished
        underneath us (``store.clear()``, disk-budget eviction, another
        process) — the existence probe keeps the ``_persisted`` markers
        from silently turning demotion into data loss.
        """
        if nbytes == 0:
            return False
        if key in self._unstorable and nbytes >= self._unstorable[key]:
            # Refused at a size it still meets or exceeds: retrying is
            # guaranteed to fail.  An artifact that *shrank* below the
            # rejected size (a budget strip) falls through — the smaller
            # pair may fit the disk cap now.
            return False
        if nbytes > self._persisted.get(key, -1):
            return True
        return not self.store.contains(key)

    def _try_save(self, key: tuple, entry: PreparedPolygons,
                  nbytes: int) -> bool:
        """Best-effort persistence: a failing disk never fails a query.

        The query's result is already correct when persistence runs, so
        I/O errors (disk full, dead mount, permissions) only forfeit
        warmth: the entry stays dirty and the next checkpoint retries.
        An artifact the store *rejects* (bigger than the whole disk
        budget) is remembered as unstorable at that size, so checkpoints
        don't re-serialize it query after query.
        """
        from repro.store import ArtifactTooLargeError

        try:
            self.store.save(key, entry)
        except ArtifactTooLargeError:
            self._unstorable[key] = nbytes
            return False
        except (TypeError, ValueError):
            # A spec value the format can't address (not JSON
            # serializable): the key is unstorable at any size — this
            # session serves it from memory only.
            self._unstorable[key] = nbytes
            return False
        except OSError:
            self.store.save_failures += 1
            return False
        self._persisted[key] = nbytes
        self._unstorable.pop(key, None)  # it fits after all (it shrank)
        return True

    def _flush_dirty(self, sizes: dict) -> int:
        if self.store is None:
            return 0
        saved = 0
        for key, entry in list(self._entries.items()):
            if not self._is_dirty(key, sizes[key]):
                continue  # empty (never executed) or already durable
            if self._try_save(key, entry, sizes[key]):
                saved += 1
        return saved

    def _demote(self, key: tuple, nbytes: int) -> None:
        """Move one entry out of memory, persisting it first if needed."""
        entry = self._entries.pop(key)
        if self.store is not None and self._is_dirty(key, nbytes):
            self._try_save(key, entry, nbytes)
        self._forget(key)
        self.demotions += 1

    def _forget(self, key: tuple) -> None:
        """Drop a departed key's bookkeeping.

        The side maps are keyed only by *resident* entries, so a
        long-lived serving session (every rezoning stroke keys a fresh
        fingerprint) stays bounded by ``capacity``.  Worst case of
        forgetting: one redundant save if the same key is ever rebuilt
        from scratch instead of re-entering through a store hit.
        """
        self._sizes.pop(key, None)
        self._persisted.pop(key, None)
        self._unstorable.pop(key, None)

    def _enforce_capacity(self, exclude: tuple | None, sizes: dict) -> None:
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k in self._entries if k != exclude), None
            )
            if victim is None:
                return
            self._demote(victim, sizes.get(victim, 0))

    def _enforce_byte_budget(self, exclude: tuple | None,
                             sizes: dict) -> None:
        if self.byte_budget is None:
            return
        total = sum(sizes[key] for key in self._entries)
        if total <= self.byte_budget:
            return
        # Tier 1: strip re-derivable state (coverage, boundary masks)
        # from cold entries, keeping triangles and grid hot.  Full
        # artifacts are persisted first so the disk tier keeps coverage.
        for key in list(self._entries):
            if total <= self.byte_budget:
                return
            if key == exclude:
                continue
            entry = self._entries[key]
            if not entry.has_derived:
                continue
            if self.store is not None and self._is_dirty(key, sizes[key]):
                # Persist the *full* artifact before stripping, so the
                # disk tier keeps coverage.  ``_persisted`` stays at the
                # full size: the stripped entry reads as clean (the
                # store holds a superset) and lazy re-derivation — which
                # is bit-identical — reads as clean too, so repeated
                # budget-pressured queries never rewrite the pair.
                self._try_save(key, entry, sizes[key])
            freed = entry.strip_derived()
            sizes[key] -= freed
            total -= freed
            self.partial_demotions += 1
        # Tier 2: demote whole entries to the store, LRU-first.
        for key in list(self._entries):
            if total <= self.byte_budget:
                return
            if key == exclude:
                continue
            total -= sizes[key]
            self._demote(key, sizes[key])

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self, polygons: PolygonSet | Sequence[Polygon] | None = None
    ) -> int:
        """Drop cached in-memory artifacts, returning how many were
        removed.

        With ``polygons`` given, only entries for that geometry (any spec)
        are dropped; with ``None``, the whole session is cleared.  The
        disk tier is left intact — use ``session.store.clear()`` (or
        ``delete``) to reclaim disk space.
        """
        if polygons is None:
            removed = len(self._entries)
            for key in list(self._entries):
                self._forget(key)
            self._entries.clear()
            return removed
        fingerprint = polygon_fingerprint(polygons)
        doomed = [key for key in self._entries if key[0] == fingerprint]
        for key in doomed:
            del self._entries[key]
            self._forget(key)
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by all in-memory artifacts."""
        return sum(entry.nbytes for entry in self._entries.values())

    def __repr__(self) -> str:
        body = (
            f"QuerySession({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"~{self.nbytes / 1e6:.1f} MB"
        )
        if self.byte_budget is not None:
            body += f" of {self.byte_budget / 1e6:.1f} MB budget"
        if self.store is not None:
            body += (
                f", store: {self.store_hits} hits, "
                f"{self.demotions} demotions"
            )
        return body + ")"
