"""GeoBlocks-style aggregate pyramid for warm overlapping queries.

Every dashboard pan/zoom re-aggregates points inside polygons that
overlap the previous frame's polygons, so even a fully warm query is
still O(points).  Following GeoBlocks (PAPERS.md), an
:class:`AggregatePyramid` precomputes per-grid-cell channel partials
once per (point source, grid frame) pair:

* **level 0** holds one partial per grid cell — point count, per-column
  sums, and per-cell min/max partials, built in one vectorized pass over
  a cell-sorted point permutation (the same CSR layout the tile-local
  partition uses);
* **coarser levels** are 2×2 reductions of the level below, down to a
  single root cell, so a big polygon's interior is answered by a handful
  of block lookups instead of thousands of cell reads.

The accurate engine consumes it through the interior/boundary cell
split (:func:`ensure_polygon_blocks`): grid cells the polygon boundary
cannot touch (its conservative outline raster at grid resolution misses
them) are uniformly inside or outside, so one center PIP test per cell
classifies them; interior cells are answered from cached blocks with
**zero point reads**, and only points in boundary cells fall through to
the existing exact :func:`~repro.core.engine.grid_pip_aggregate` pass —
O(boundary cells) instead of O(points).

Exactness contract (see ``docs/aggregate_pyramid.md``):

* **Count** — bit-identical to the exact path: both count each inside
  point exactly once with exact float64 integer additions.
* **Sum** — the same value whenever the additions are exact (integer
  -valued attributes, the common dashboard case) and deterministic
  always; with rounding, block partials associate the same float64
  additions differently than the pixel pass, so the result is exact
  -sum-equivalent, not bit-equal.
* **Min/Max** — exact: the combine is order-free, NaN poisons partials
  exactly as it does ``np.min``/``np.minimum.at`` in the pixel path.
* **Average** — finalized from the Count and Sum channels, so it
  inherits their guarantees.

The pyramid depends only on the points and the grid frame — never the
polygons — so PR 5's delta polygon edits keep it byte-for-byte.  Point
content is validated by the session's content hash on every lookup, so
mutated point arrays can never replay stale partials.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.aggregates import Aggregate
from repro.geometry.polygon import PolygonSet
from repro.graphics.raster_line import outline_pixels
from repro.graphics.viewport import Viewport
from repro.index.grid import GridIndex
from repro.obs import metrics, trace

#: Per-channel identity values by partial kind (count/sum fold from 0).
_IDENTITY = {"count": 0.0, "sum": 0.0, "min": np.inf, "max": -np.inf}


def channel_kinds(aggregate: Aggregate) -> dict[str, tuple[str, str | None]] | None:
    """Map each channel to its pyramid partial ``(kind, column)``.

    Additive blends decompose into ``count`` (constant-1 channels) and
    ``sum`` partials — this covers Count, Sum, Average, and any additive
    :class:`~repro.core.multi.MultiAggregate`.  Min/max blends map to
    per-cell order-statistic partials.  ``None`` means the aggregate has
    a shape the pyramid cannot serve (the engine falls back to the
    exact path).
    """
    kinds: dict[str, tuple[str, str | None]] = {}
    for ch, col in aggregate.channels.items():
        if aggregate.blend == "add":
            kinds[ch] = ("count", None) if col is None else ("sum", col)
        elif aggregate.blend in ("min", "max"):
            if col is None:
                return None
            kinds[ch] = (aggregate.blend, col)
        else:
            return None
    return kinds


def pyramid_levels(resolution: int) -> int:
    """How many levels a pyramid over ``resolution``² cells has (down to
    the 1×1 root)."""
    levels = 1
    side = resolution
    while side > 1:
        side = (side + 1) // 2
        levels += 1
    return levels


def _reduce2x2(level: np.ndarray, op, identity: float) -> np.ndarray:
    """One 2×2 reduction step, padding odd edges with the identity."""
    h, w = level.shape
    h2, w2 = (h + 1) // 2, (w + 1) // 2
    if h % 2 or w % 2:
        padded = np.full((h2 * 2, w2 * 2), identity, dtype=np.float64)
        padded[:h, :w] = level
        level = padded
    top = op(level[0::2, 0::2], level[0::2, 1::2])
    bottom = op(level[1::2, 0::2], level[1::2, 1::2])
    return op(top, bottom)


class AggregatePyramid:
    """Per-grid-cell channel partials with 2×2 reduction levels.

    Built once per (point source, grid frame); channels are added
    lazily, one vectorized pass each, the first time a query needs
    them.  ``point_order``/``cell_start`` form a CSR over the grid's
    cells (in-extent points only, ascending original index within each
    cell) so the boundary fallback can gather exactly the points of the
    boundary cells without rescanning the source.
    """

    __slots__ = ("extent", "resolution", "num_points", "point_order",
                 "cell_start", "channels", "version", "build_s", "uses")

    def __init__(
        self,
        extent: tuple[float, float, float, float],
        resolution: int,
        num_points: int,
        point_order: np.ndarray,
        cell_start: np.ndarray,
    ) -> None:
        self.extent = tuple(extent)
        self.resolution = int(resolution)
        self.num_points = int(num_points)
        self.point_order = point_order
        self.cell_start = cell_start
        #: (kind, column) -> [level 0 (res×res), level 1, ..., 1×1 root]
        self.channels: dict[tuple[str, str | None], list[np.ndarray]] = {}
        #: bumped whenever a channel is added; the session persists the
        #: pyramid when this exceeds the last persisted version.
        self.version = 0
        self.build_s = 0.0
        self.uses = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, points, grid: GridIndex) -> "AggregatePyramid":
        """One vectorized pass: sort points into the grid's cell CSR."""
        start = time.perf_counter()
        xs = np.asarray(points.column("x"), dtype=np.float64)
        ys = np.asarray(points.column("y"), dtype=np.float64)
        cells = grid.cell_of_points(xs, ys)
        inside = np.flatnonzero(cells >= 0)
        in_cells = cells[inside]
        # Stable sort: ascending original index within each cell, so
        # per-cell sum partials fold values in input order (the same
        # sequential order np.add.at applies within one pixel).
        order = np.argsort(in_cells, kind="stable")
        point_order = inside[order].astype(np.int64, copy=False)
        num_cells = grid.resolution * grid.resolution
        counts = np.bincount(in_cells, minlength=num_cells)
        cell_start = np.zeros(num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=cell_start[1:])
        ext = grid.extent
        pyramid = cls(
            (ext.xmin, ext.ymin, ext.xmax, ext.ymax),
            grid.resolution, len(xs), point_order, cell_start,
        )
        pyramid.build_s = time.perf_counter() - start
        metrics.counter("pyramid_builds")
        metrics.observe("pyramid_build_seconds", pyramid.build_s)
        return pyramid

    def _sorted_cells(self) -> np.ndarray:
        """Cell id of each point in ``point_order`` (recomputed from the
        CSR rather than stored — one np.repeat per channel build)."""
        num_cells = self.resolution * self.resolution
        return np.repeat(
            np.arange(num_cells, dtype=np.int64), np.diff(self.cell_start)
        )

    def ensure_channel(self, kind: str, column: str | None, points) -> None:
        """Build the (kind, column) partial stack if not yet present."""
        key = (kind, column)
        if key in self.channels:
            return
        start = time.perf_counter()
        num_cells = self.resolution * self.resolution
        if kind == "count":
            level0 = np.diff(self.cell_start).astype(np.float64)
        else:
            vals = np.asarray(
                points.column(column), dtype=np.float64
            )[self.point_order]
            sorted_cells = self._sorted_cells()
            if kind == "sum":
                level0 = np.bincount(
                    sorted_cells, weights=vals, minlength=num_cells
                )
            else:
                level0 = np.full(num_cells, _IDENTITY[kind], dtype=np.float64)
                if kind == "min":
                    np.minimum.at(level0, sorted_cells, vals)
                else:
                    np.maximum.at(level0, sorted_cells, vals)
        self.install_channel(kind, column, level0.reshape(
            self.resolution, self.resolution
        ))
        elapsed = time.perf_counter() - start
        self.build_s += elapsed
        metrics.counter("pyramid_channel_builds", kind=kind)
        metrics.observe("pyramid_build_seconds", elapsed)

    def install_channel(
        self, kind: str, column: str | None, level0: np.ndarray
    ) -> None:
        """Adopt a level-0 array (fresh build or store load) and derive
        the coarser levels — upper levels are always recomputed, never
        persisted."""
        op = {"count": np.add, "sum": np.add,
              "min": np.minimum, "max": np.maximum}[kind]
        identity = _IDENTITY[kind]
        levels = [np.asarray(level0, dtype=np.float64)]
        while levels[-1].shape != (1, 1):
            levels.append(_reduce2x2(levels[-1], op, identity))
        self.channels[(kind, column)] = levels
        self.version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block_reduce(
        self, kind: str, column: str | None, blocks: list
    ) -> float:
        """Fold one polygon's interior blocks into a single partial.

        ``blocks`` is a :func:`decompose_blocks` list of ``(level, flat
        ids)`` pairs, ascending by level with sorted ids, so additive
        folds always visit the same values in the same order —
        deterministic across runs and identical to a rebuilt pyramid.
        """
        levels = self.channels[(kind, column)]
        if kind in ("count", "sum"):
            total = 0.0
            for level, ids in blocks:
                total += float(np.sum(
                    levels[level].ravel()[ids], dtype=np.float64
                ))
            return total
        best = _IDENTITY[kind]
        combine = np.minimum if kind == "min" else np.maximum
        fold = np.min if kind == "min" else np.max
        for level, ids in blocks:
            best = float(combine(best, fold(levels[level].ravel()[ids])))
        return best

    def gather_indices(self, cells: np.ndarray) -> np.ndarray:
        """Original point indices of every point in the given cells.

        CSR expansion over ``cell_start`` — the boundary fallback reads
        only these points, which is the whole speedup.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if len(cells) == 0:
            return np.zeros(0, dtype=np.int64)
        starts = self.cell_start[cells]
        counts = self.cell_start[cells + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        first = np.repeat(np.cumsum(counts) - counts, counts)
        pos = np.repeat(starts, counts) + (
            np.arange(total, dtype=np.int64) - first
        )
        return self.point_order[pos]

    # ------------------------------------------------------------------
    # Introspection / persistence support
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        total = self.point_order.nbytes + self.cell_start.nbytes
        for levels in self.channels.values():
            for level in levels:
                total += level.nbytes
        return total

    def level_zero(self) -> dict[tuple[str, str | None], np.ndarray]:
        """The per-channel level-0 arrays (what persistence stores;
        upper levels rebuild in :meth:`install_channel`)."""
        return {key: levels[0] for key, levels in self.channels.items()}

    def __repr__(self) -> str:
        chans = ", ".join(
            f"{kind}({col})" if col else kind
            for kind, col in self.channels
        )
        return (
            f"AggregatePyramid({self.resolution}x{self.resolution}, "
            f"{self.num_points} points, channels=[{chans}], "
            f"~{self.nbytes / 1e6:.1f} MB)"
        )


# ----------------------------------------------------------------------
# Polygon-side classification
# ----------------------------------------------------------------------
def classify_cells(
    polygon, cells: np.ndarray, grid: GridIndex, viewport: Viewport
) -> tuple[np.ndarray, np.ndarray]:
    """Split a polygon's candidate cells into (interior, boundary).

    ``pip`` cells are the conservative supercover of the polygon's
    outline at grid resolution — every cell the boundary could touch
    (the same :func:`outline_pixels` raster the accurate engine trusts
    for its per-tile boundary masks).  Any other candidate cell is
    entirely on one side of the boundary, so a single center PIP test
    classifies the whole cell; center-inside cells are ``interior``
    (every point in them is inside the polygon), center-outside cells
    are dropped (no point in them can be inside).
    """
    res = grid.resolution
    cells = np.unique(np.asarray(cells, dtype=np.int64))
    ix, iy = outline_pixels(viewport, polygon.rings)
    pip = np.unique(
        np.asarray(iy, dtype=np.int64) * res + np.asarray(ix, dtype=np.int64)
    )
    candidates = np.setdiff1d(cells, pip, assume_unique=True)
    if len(candidates) == 0:
        return candidates, pip
    cy, cx = np.divmod(candidates, res)
    xs = grid.extent.xmin + (cx + 0.5) * grid.cell_w
    ys = grid.extent.ymin + (cy + 0.5) * grid.cell_h
    inside = polygon.contains_points(xs, ys)
    return candidates[inside], pip


def decompose_blocks(
    cells: np.ndarray, resolution: int, num_levels: int
) -> list[tuple[int, np.ndarray]]:
    """Greedy bottom-up block decomposition of an interior cell set.

    Promotes a parent cell whenever *all* of its in-range children are
    present — the promoted parent's pyramid value equals the reduction
    of exactly those children, so answering from the parent reads the
    same partials.  Returns ``[(level, sorted flat ids), ...]``
    ascending by level; a big convex interior collapses to O(log)
    blocks per side instead of O(area) cells.
    """
    blocks: list[tuple[int, np.ndarray]] = []
    ids = np.sort(np.asarray(cells, dtype=np.int64))
    width = height = resolution
    level = 0
    while len(ids) and level < num_levels - 1:
        pw = (width + 1) // 2
        cy, cx = np.divmod(ids, width)
        parents = (cy >> 1) * pw + (cx >> 1)
        uniq, counts = np.unique(parents, return_counts=True)
        py, px = np.divmod(uniq, pw)
        expected = (
            np.where(2 * px + 1 < width, 2, 1)
            * np.where(2 * py + 1 < height, 2, 1)
        )
        full = counts == expected
        promoted = uniq[full]
        if len(promoted):
            keep = ~np.isin(parents, promoted)
            if keep.any():
                blocks.append((level, ids[keep]))
            ids = promoted
        else:
            blocks.append((level, ids))
            ids = ids[:0]
        width = pw
        height = (height + 1) // 2
        level += 1
    if len(ids):
        blocks.append((level, ids))
    return blocks


def ensure_polygon_blocks(
    prepared, polygons: PolygonSet, grid: GridIndex
) -> GridIndex:
    """Classify every unit's cells and compose the boundary-only grid.

    Lazily fills each :class:`~repro.cache.prepared.PolygonUnit`'s
    ``interior_cells``/``pip_cells``/``blocks`` (after a delta edit,
    only the rebuilt polygons' units are missing them) and keeps
    ``prepared.pip_grid`` — a CSR grid over *boundary cells only*, so
    the fallback PIP pass never re-tests a point whose cell a polygon
    covers entirely (the cached block already counted it).  Returns the
    composed grid.
    """
    units = prepared.units
    viewport = Viewport(grid.extent, grid.resolution, grid.resolution)
    num_levels = pyramid_levels(grid.resolution)
    dirty = False
    with trace.span("pyramid-classify", polygons=len(units)):
        for pid, unit in enumerate(units):
            if unit.blocks is not None and unit.pip_cells is not None:
                continue
            cells = unit.cells
            if cells is None:
                cells = GridIndex.cells_for_polygon(
                    polygons[pid], grid.extent, grid.resolution,
                    grid.assignment
                )
                unit.cells = cells
            interior, pip = classify_cells(
                polygons[pid], cells, grid, viewport
            )
            unit.interior_cells = interior
            unit.pip_cells = pip
            unit.blocks = decompose_blocks(
                interior, grid.resolution, num_levels
            )
            dirty = True
    if prepared.pip_grid is None or dirty:
        prepared.pip_grid = GridIndex.from_cells(
            polygons,
            [unit.pip_cells for unit in units],
            resolution=grid.resolution,
            assignment=grid.assignment,
            extent=grid.extent,
        )
        prepared.version += 1
    return prepared.pip_grid
