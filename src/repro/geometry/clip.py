"""Clipping primitives: Cohen–Sutherland segments, Sutherland–Hodgman rings.

The paper's result-range estimator (§5/§6) clips polygon edges against
boundary pixels with Cohen–Sutherland and derives the fraction of each pixel
covered by the polygon.  For arbitrary (concave, holed) polygons the robust
way to get that fraction is to clip every *triangle* of the triangulation
against the pixel rectangle and add up areas; both primitives live here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BBox

# Cohen–Sutherland outcodes.
_INSIDE, _LEFT, _RIGHT, _BOTTOM, _TOP = 0, 1, 2, 4, 8


def _outcode(x: float, y: float, rect: BBox) -> int:
    code = _INSIDE
    if x < rect.xmin:
        code |= _LEFT
    elif x > rect.xmax:
        code |= _RIGHT
    if y < rect.ymin:
        code |= _BOTTOM
    elif y > rect.ymax:
        code |= _TOP
    return code


def clip_segment_to_rect(
    ax: float, ay: float, bx: float, by: float, rect: BBox
) -> tuple[float, float, float, float] | None:
    """Cohen–Sutherland: clip segment a-b to ``rect``.

    Returns the clipped segment endpoints, or ``None`` when the segment lies
    entirely outside the rectangle (closed-boundary semantics).
    """
    code_a = _outcode(ax, ay, rect)
    code_b = _outcode(bx, by, rect)
    while True:
        if not (code_a | code_b):
            return (ax, ay, bx, by)
        if code_a & code_b:
            return None
        code_out = code_a if code_a else code_b
        if code_out & _TOP:
            x = ax + (bx - ax) * (rect.ymax - ay) / (by - ay)
            y = rect.ymax
        elif code_out & _BOTTOM:
            x = ax + (bx - ax) * (rect.ymin - ay) / (by - ay)
            y = rect.ymin
        elif code_out & _RIGHT:
            y = ay + (by - ay) * (rect.xmax - ax) / (bx - ax)
            x = rect.xmax
        else:  # _LEFT
            y = ay + (by - ay) * (rect.xmin - ax) / (bx - ax)
            x = rect.xmin
        if code_out == code_a:
            ax, ay = x, y
            code_a = _outcode(ax, ay, rect)
        else:
            bx, by = x, y
            code_b = _outcode(bx, by, rect)


def ring_area(ring: np.ndarray) -> float:
    """Signed shoelace area of an implicitly closed ring."""
    if len(ring) < 3:
        return 0.0
    x = ring[:, 0]
    y = ring[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def clip_polygon_to_rect(ring: np.ndarray, rect: BBox) -> np.ndarray:
    """Sutherland–Hodgman: clip a convex-or-concave ring to a rectangle.

    Correct for any simple ring clipped against a convex window (the
    rectangle).  Returns the clipped ring, possibly empty (shape (0, 2)).
    Degenerate zero-area output is possible for rings that only touch the
    rectangle boundary; callers use :func:`ring_area` to discard those.
    """
    subject = np.asarray(ring, dtype=np.float64)

    def clip_edge(points: np.ndarray, inside, intersect) -> np.ndarray:
        if len(points) == 0:
            return points
        out: list[tuple[float, float]] = []
        n = len(points)
        for i in range(n):
            cur = points[i]
            prev = points[i - 1]
            cur_in = inside(cur)
            prev_in = inside(prev)
            if cur_in:
                if not prev_in:
                    out.append(intersect(prev, cur))
                out.append((float(cur[0]), float(cur[1])))
            elif prev_in:
                out.append(intersect(prev, cur))
        return np.asarray(out, dtype=np.float64).reshape(-1, 2)

    def x_cross(p, q, x_edge):
        t = (x_edge - p[0]) / (q[0] - p[0])
        return (x_edge, float(p[1] + t * (q[1] - p[1])))

    def y_cross(p, q, y_edge):
        t = (y_edge - p[1]) / (q[1] - p[1])
        return (float(p[0] + t * (q[0] - p[0])), y_edge)

    subject = clip_edge(subject, lambda p: p[0] >= rect.xmin,
                        lambda p, q: x_cross(p, q, rect.xmin))
    subject = clip_edge(subject, lambda p: p[0] <= rect.xmax,
                        lambda p, q: x_cross(p, q, rect.xmax))
    subject = clip_edge(subject, lambda p: p[1] >= rect.ymin,
                        lambda p, q: y_cross(p, q, rect.ymin))
    subject = clip_edge(subject, lambda p: p[1] <= rect.ymax,
                        lambda p, q: y_cross(p, q, rect.ymax))
    return subject


def pixel_coverage_fraction(
    triangles: Sequence[np.ndarray], rect: BBox
) -> float:
    """Fraction of ``rect`` covered by a triangulated polygon.

    Clips each CCW triangle against the rectangle and sums the clipped
    areas.  Because the triangles partition the polygon interior, the sum is
    exactly area(polygon ∩ rect); dividing by the rectangle area yields the
    fraction f(x, y) used by the expected result intervals of §5.
    """
    if rect.area <= 0.0:
        return 0.0
    covered = 0.0
    for tri in triangles:
        clipped = clip_polygon_to_rect(tri, rect)
        if len(clipped) >= 3:
            covered += abs(ring_area(clipped))
    fraction = covered / rect.area
    # Clamp tiny floating-point overshoot.
    return min(max(fraction, 0.0), 1.0)
