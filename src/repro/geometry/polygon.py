"""Simple polygons (optionally with holes) and sets of polygons.

A :class:`Polygon` stores one exterior ring plus zero or more hole rings as
``(n, 2)`` float64 arrays.  Rings are normalized on construction: exteriors
counter-clockwise, holes clockwise, no repeated closing vertex.  The raster
join engines consume polygons through :class:`PolygonSet`, which is the
"R(id, geometry)" relation of the paper's query template.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidPolygonError
from repro.geometry.bbox import BBox
from repro.geometry.predicates import (
    orientation,
    point_in_polygon,
    point_on_ring_boundary,
    points_in_polygon,
    segments_intersect,
)


def _as_ring(vertices: Iterable[Sequence[float]]) -> np.ndarray:
    ring = np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices,
                      dtype=np.float64)
    if ring.ndim != 2 or ring.shape[1] != 2:
        raise InvalidPolygonError(f"ring must be (n, 2), got shape {ring.shape}")
    # Drop an explicit closing vertex; rings are implicitly closed.
    if len(ring) > 1 and np.array_equal(ring[0], ring[-1]):
        ring = ring[:-1]
    if len(ring) < 3:
        raise InvalidPolygonError(f"ring needs >= 3 distinct vertices, got {len(ring)}")
    if not np.all(np.isfinite(ring)):
        raise InvalidPolygonError("ring contains non-finite coordinates")
    return ring


class Polygon:
    """A simple polygon with an exterior ring and optional hole rings."""

    __slots__ = ("exterior", "holes", "_bbox")

    def __init__(
        self,
        exterior: Iterable[Sequence[float]],
        holes: Sequence[Iterable[Sequence[float]]] = (),
    ) -> None:
        ext = _as_ring(exterior)
        if orientation(ext) == 0.0:
            raise InvalidPolygonError("exterior ring has zero area")
        # Normalize winding: exterior CCW, holes CW.  Rasterization and
        # triangulation both rely on this convention.
        if orientation(ext) < 0:
            ext = ext[::-1].copy()
        hole_rings = []
        for hole in holes:
            ring = _as_ring(hole)
            if orientation(ring) == 0.0:
                raise InvalidPolygonError("hole ring has zero area")
            if orientation(ring) > 0:
                ring = ring[::-1].copy()
            hole_rings.append(ring)
        self.exterior: np.ndarray = ext
        self.holes: tuple[np.ndarray, ...] = tuple(hole_rings)
        xs = ext[:, 0]
        ys = ext[:, 1]
        self._bbox = BBox(
            float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rings(self) -> tuple[np.ndarray, ...]:
        """All rings, exterior first."""
        return (self.exterior,) + self.holes

    @property
    def bbox(self) -> BBox:
        return self._bbox

    @property
    def num_vertices(self) -> int:
        return sum(len(r) for r in self.rings)

    @property
    def area(self) -> float:
        """Enclosed area (exterior minus holes)."""
        total = orientation(self.exterior)
        for hole in self.holes:
            total += orientation(hole)  # holes are CW, so this subtracts
        return total

    def __repr__(self) -> str:
        return (
            f"Polygon({len(self.exterior)} exterior vertices, "
            f"{len(self.holes)} holes, area={self.area:.3g})"
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, x: float, y: float) -> bool:
        """Even-odd point-in-polygon test (the paper's PIP test)."""
        if not self._bbox.contains_point(x, y) and not (
            x == self._bbox.xmax or y == self._bbox.ymax
        ):
            return False
        return point_in_polygon(x, y, self.rings)

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized PIP for many points."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        box = self._bbox
        candidate = (
            (xs >= box.xmin) & (xs <= box.xmax)
            & (ys >= box.ymin) & (ys <= box.ymax)
        )
        out = np.zeros(xs.shape, dtype=bool)
        if candidate.any():
            out[candidate] = points_in_polygon(xs[candidate], ys[candidate], self.rings)
        return out

    def on_boundary(self, x: float, y: float, tol: float = 0.0) -> bool:
        """Whether the point lies on any ring edge (within ``tol``)."""
        return any(point_on_ring_boundary(x, y, r, tol=tol) for r in self.rings)

    def is_simple(self) -> bool:
        """Check each ring for self-intersections (O(n^2) edge pairs).

        Intended for validating synthetic generators and test fixtures,
        not for hot paths.
        """
        for ring in self.rings:
            n = len(ring)
            edges = [
                (tuple(ring[i]), tuple(ring[(i + 1) % n])) for i in range(n)
            ]
            for i in range(n):
                for j in range(i + 1, n):
                    # Skip adjacent edges (they share an endpoint).
                    if j == i + 1 or (i == 0 and j == n - 1):
                        continue
                    if segments_intersect(*edges[i], *edges[j]):
                        return False
        return True

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[float, float, float, float]]:
        """Yield every boundary edge as (ax, ay, bx, by), all rings."""
        for ring in self.rings:
            n = len(ring)
            for i in range(n):
                a = ring[i]
                b = ring[(i + 1) % n]
                yield (float(a[0]), float(a[1]), float(b[0]), float(b[1]))


class PolygonSet:
    """An ordered collection of polygons with stable integer ids.

    This is the polygon relation ``R(id, geometry)`` of the paper: the raster
    join returns one aggregate slot per polygon, indexed by position.
    """

    __slots__ = ("polygons", "names", "_bbox")

    def __init__(
        self,
        polygons: Sequence[Polygon],
        names: Sequence[str] | None = None,
    ) -> None:
        if len(polygons) == 0:
            raise InvalidPolygonError("PolygonSet needs at least one polygon")
        if names is not None and len(names) != len(polygons):
            raise InvalidPolygonError(
                f"{len(names)} names for {len(polygons)} polygons"
            )
        self.polygons: tuple[Polygon, ...] = tuple(polygons)
        self.names: tuple[str, ...] = (
            tuple(names) if names is not None
            else tuple(f"region-{i}" for i in range(len(polygons)))
        )
        box = polygons[0].bbox
        for poly in polygons[1:]:
            box = box.union(poly.bbox)
        self._bbox = box

    def __len__(self) -> int:
        return len(self.polygons)

    def __getitem__(self, i: int) -> Polygon:
        return self.polygons[i]

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    @property
    def bbox(self) -> BBox:
        """Extent of the whole polygon set (the paper's w x h canvas box)."""
        return self._bbox

    @property
    def total_vertices(self) -> int:
        return sum(p.num_vertices for p in self.polygons)

    def __repr__(self) -> str:
        return (
            f"PolygonSet({len(self.polygons)} polygons, "
            f"{self.total_vertices} vertices)"
        )


def regular_polygon(
    cx: float, cy: float, radius: float, sides: int, phase: float = 0.0
) -> Polygon:
    """Convenience constructor for tests and examples."""
    angles = phase + 2.0 * np.pi * np.arange(sides) / sides
    ring = np.column_stack([cx + radius * np.cos(angles), cy + radius * np.sin(angles)])
    return Polygon(ring)


def rectangle(xmin: float, ymin: float, xmax: float, ymax: float) -> Polygon:
    """Axis-aligned rectangle polygon."""
    return Polygon(
        [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)]
    )
