"""Axis-aligned bounding boxes.

A :class:`BBox` is the unit of spatial extent used throughout the library:
dataset extents, viewport canvases, grid-index cells, and canvas tiles are
all bounding boxes.  Containment follows half-open semantics
(``xmin <= x < xmax``) so a collection of tiles that partitions a box assigns
every point to exactly one tile — the invariant the multi-canvas rendering
of the paper's Figure 5 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class BBox:
    """An axis-aligned rectangle ``[xmin, xmax) x [ymin, ymax)``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmin <= self.xmax and self.ymin <= self.ymax):
            raise GeometryError(
                f"degenerate bbox: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Half-open containment test for a single point."""
        return self.xmin <= x < self.xmax and self.ymin <= y < self.ymax

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized half-open containment test."""
        return (
            (xs >= self.xmin)
            & (xs < self.xmax)
            & (ys >= self.ymin)
            & (ys < self.ymax)
        )

    def contains_bbox(self, other: "BBox") -> bool:
        """Whether ``other`` lies entirely inside this box (closed test)."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "BBox") -> bool:
        """Closed intersection test (shared edges count as touching)."""
        return not (
            other.xmax < self.xmin
            or other.xmin > self.xmax
            or other.ymax < self.ymin
            or other.ymin > self.ymax
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def of_points(xs: np.ndarray, ys: np.ndarray, pad: float = 0.0) -> "BBox":
        """Smallest box covering the points, optionally padded.

        A small positive ``pad`` on the max edges keeps every point strictly
        inside the half-open box, which is how dataset extents are built.
        """
        if len(xs) == 0:
            raise GeometryError("cannot build a bbox from zero points")
        return BBox(
            float(np.min(xs)) - pad,
            float(np.min(ys)) - pad,
            float(np.max(xs)) + pad,
            float(np.max(ys)) + pad,
        )

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "BBox") -> "BBox | None":
        """Overlap box, or ``None`` when the boxes are disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return BBox(xmin, ymin, xmax, ymax)

    def expanded(self, margin: float) -> "BBox":
        """A copy grown by ``margin`` on every side."""
        return BBox(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    # ------------------------------------------------------------------
    # Tiling
    # ------------------------------------------------------------------
    def split(self, nx: int, ny: int) -> Iterator["BBox"]:
        """Partition into an ``nx x ny`` grid of half-open tiles.

        Tiles are yielded row-major (y outer, x inner).  Tile edges are
        computed with linspace so the last tile's max edge equals this box's
        max edge exactly — points are never lost between tiles.
        """
        if nx < 1 or ny < 1:
            raise GeometryError(f"invalid tiling {nx} x {ny}")
        xs = np.linspace(self.xmin, self.xmax, nx + 1)
        ys = np.linspace(self.ymin, self.ymax, ny + 1)
        for j in range(ny):
            for i in range(nx):
                yield BBox(xs[i], ys[j], xs[i + 1], ys[j + 1])
