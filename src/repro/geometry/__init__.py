"""Computational-geometry substrate.

Everything the raster-join engines need from geometry lives here: bounding
boxes, simple polygons with holes, point-in-polygon and orientation
predicates, ear-clipping triangulation, line/polygon clipping, and Hausdorff
distances.  The package is self-contained (NumPy only) and deliberately does
not depend on shapely/GEOS so the reproduction runs anywhere.
"""

from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet
from repro.geometry.predicates import (
    orientation,
    point_in_ring,
    point_in_polygon,
    point_on_segment,
    points_in_polygon,
    segments_intersect,
)
from repro.geometry.triangulate import triangulate_polygon, triangulate_ring
from repro.geometry.clip import (
    clip_segment_to_rect,
    clip_polygon_to_rect,
    ring_area,
    pixel_coverage_fraction,
)
from repro.geometry.hausdorff import (
    hausdorff_distance,
    directed_hausdorff,
    polyline_hausdorff,
)

__all__ = [
    "BBox",
    "Polygon",
    "PolygonSet",
    "orientation",
    "point_in_ring",
    "point_in_polygon",
    "point_on_segment",
    "points_in_polygon",
    "segments_intersect",
    "triangulate_polygon",
    "triangulate_ring",
    "clip_segment_to_rect",
    "clip_polygon_to_rect",
    "ring_area",
    "pixel_coverage_fraction",
    "hausdorff_distance",
    "directed_hausdorff",
    "polyline_hausdorff",
]
