"""Hausdorff distances between point sets and polylines.

The bounded raster join's guarantee (§4.2) is stated in terms of the
Hausdorff distance between a polygon and its pixelated approximation: with
pixel side ε/√2 the approximation stays within ε.  These helpers let the
tests verify that bound empirically on sampled boundaries.
"""

from __future__ import annotations

import numpy as np


def _point_segment_distance(
    px: np.ndarray, py: np.ndarray,
    ax: float, ay: float, bx: float, by: float,
) -> np.ndarray:
    """Distance from each point to the closed segment a-b (vectorized)."""
    dx, dy = bx - ax, by - ay
    sq_len = dx * dx + dy * dy
    if sq_len == 0.0:
        return np.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / sq_len
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(px - (ax + t * dx), py - (ay + t * dy))


def directed_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """max over points of ``a`` of the distance to the nearest point of ``b``.

    Point-set version (no interpolation along segments); inputs are (n, 2)
    arrays.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) == 0:
        return 0.0
    if len(b) == 0:
        return float("inf")
    # Chunk to bound the distance-matrix memory.
    worst = 0.0
    chunk = max(1, int(2_000_000 / max(len(b), 1)))
    for start in range(0, len(a), chunk):
        part = a[start:start + chunk]
        d = np.hypot(
            part[:, None, 0] - b[None, :, 0],
            part[:, None, 1] - b[None, :, 1],
        )
        worst = max(worst, float(d.min(axis=1).max()))
    return worst


def hausdorff_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two point sets."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


def sample_polyline(vertices: np.ndarray, spacing: float, closed: bool = True) -> np.ndarray:
    """Resample a polyline at roughly ``spacing`` intervals.

    Turning polygon boundaries into dense point samples makes the point-set
    Hausdorff distance a faithful stand-in for the continuous one (error at
    most spacing/2).
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    pts: list[np.ndarray] = []
    n = len(vertices)
    last = n if closed else n - 1
    for i in range(last):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        length = float(np.hypot(*(b - a)))
        steps = max(1, int(np.ceil(length / max(spacing, 1e-12))))
        ts = np.arange(steps) / steps
        pts.append(a[None, :] + ts[:, None] * (b - a)[None, :])
    return np.concatenate(pts, axis=0) if pts else vertices.copy()


def polyline_hausdorff(
    ring_a: np.ndarray, ring_b: np.ndarray, spacing: float
) -> float:
    """Hausdorff distance between two closed boundaries, sampled densely."""
    return hausdorff_distance(
        sample_polyline(ring_a, spacing), sample_polyline(ring_b, spacing)
    )
