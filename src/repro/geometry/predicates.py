"""Scalar and vectorized geometric predicates.

The point-in-polygon (PIP) test implemented here is the crossing-number
(even-odd) rule with half-open edge handling, the same convention used by
the scanline rasterizer in :mod:`repro.graphics.raster_polygon`.  Keeping the
two consistent is what lets the test suite assert "raster coverage equals
PIP of the pixel center" exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

Ring = np.ndarray  # (n, 2) float array of vertices, implicitly closed


def orientation(ring: Ring) -> float:
    """Signed area of a ring: positive for counter-clockwise vertex order.

    Uses the shoelace formula.  The ring is treated as implicitly closed
    (the last vertex connects back to the first).
    """
    x = ring[:, 0]
    y = ring[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def point_on_segment(
    px: float, py: float, ax: float, ay: float, bx: float, by: float,
    tol: float = 0.0,
) -> bool:
    """Whether point p lies on the closed segment a-b (within ``tol``)."""
    cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
    seg_len = max(abs(bx - ax), abs(by - ay), 1e-300)
    if abs(cross) > tol * seg_len + 1e-12 * seg_len:
        return False
    dot = (px - ax) * (bx - ax) + (py - ay) * (by - ay)
    sq_len = (bx - ax) ** 2 + (by - ay) ** 2
    return -1e-12 <= dot <= sq_len * (1 + 1e-12)


def point_in_ring(x: float, y: float, ring: Ring) -> bool:
    """Crossing-number PIP test for one point against one ring.

    An edge (a, b) is counted when it spans the horizontal line through the
    point under the half-open rule ``min(ay, by) <= y < max(ay, by)`` and the
    intersection is strictly to the right of the point.  Points exactly on
    the boundary get an arbitrary but deterministic answer; callers that
    care use :func:`point_on_ring_boundary` first.
    """
    n = len(ring)
    inside = False
    ax, ay = float(ring[n - 1, 0]), float(ring[n - 1, 1])
    for i in range(n):
        bx, by = float(ring[i, 0]), float(ring[i, 1])
        if (ay <= y < by) or (by <= y < ay):
            # x coordinate where the edge crosses the horizontal line
            t = (y - ay) / (by - ay)
            cross_x = ax + t * (bx - ax)
            if cross_x > x:
                inside = not inside
        ax, ay = bx, by
    return inside


def point_on_ring_boundary(x: float, y: float, ring: Ring, tol: float = 0.0) -> bool:
    """Whether the point lies on any edge of the ring (within ``tol``)."""
    n = len(ring)
    ax, ay = float(ring[n - 1, 0]), float(ring[n - 1, 1])
    for i in range(n):
        bx, by = float(ring[i, 0]), float(ring[i, 1])
        if point_on_segment(x, y, ax, ay, bx, by, tol=tol):
            return True
        ax, ay = bx, by
    return False


def point_in_polygon(x: float, y: float, rings: Sequence[Ring]) -> bool:
    """Even-odd PIP test for a polygon given as [exterior, *holes]."""
    crossings = 0
    for ring in rings:
        if point_in_ring(x, y, ring):
            crossings += 1
    return crossings % 2 == 1


def points_in_ring(xs: np.ndarray, ys: np.ndarray, ring: Ring) -> np.ndarray:
    """Vectorized crossing-number test of many points against one ring.

    This is the workhorse of every PIP-based join in the library; it mirrors
    :func:`point_in_ring` exactly but loops over edges instead of points so
    NumPy does the per-point work.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    inside = np.zeros(xs.shape, dtype=bool)
    n = len(ring)
    ax, ay = float(ring[n - 1, 0]), float(ring[n - 1, 1])
    for i in range(n):
        bx, by = float(ring[i, 0]), float(ring[i, 1])
        if ay != by:
            spans = ((ay <= ys) & (ys < by)) | ((by <= ys) & (ys < ay))
            if spans.any():
                t = (ys[spans] - ay) / (by - ay)
                cross_x = ax + t * (bx - ax)
                flip = np.zeros(xs.shape, dtype=bool)
                flip[spans] = cross_x > xs[spans]
                inside ^= flip
        ax, ay = bx, by
    return inside


def points_in_polygon(
    xs: np.ndarray, ys: np.ndarray, rings: Sequence[Ring]
) -> np.ndarray:
    """Vectorized even-odd test against a polygon with holes."""
    crossings = np.zeros(np.shape(xs), dtype=np.int64)
    for ring in rings:
        crossings += points_in_ring(xs, ys, ring)
    return crossings % 2 == 1


def segments_intersect(
    p1: tuple[float, float],
    p2: tuple[float, float],
    p3: tuple[float, float],
    p4: tuple[float, float],
) -> bool:
    """Whether closed segments p1-p2 and p3-p4 intersect.

    Standard orientation-based test including collinear-overlap handling;
    used by polygon validity checks and the hole-bridging triangulator.
    """

    def cross(o: tuple[float, float], a: tuple[float, float], b: tuple[float, float]) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    def on_seg(a: tuple[float, float], b: tuple[float, float], c: tuple[float, float]) -> bool:
        return (
            min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
            and min(a[1], b[1]) <= c[1] <= max(a[1], b[1])
        )

    d1 = cross(p3, p4, p1)
    d2 = cross(p3, p4, p2)
    d3 = cross(p1, p2, p3)
    d4 = cross(p1, p2, p4)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and on_seg(p3, p4, p1):
        return True
    if d2 == 0 and on_seg(p3, p4, p2):
        return True
    if d3 == 0 and on_seg(p1, p2, p3):
        return True
    if d4 == 0 and on_seg(p1, p2, p4):
        return True
    return False


def point_in_triangle(
    x: float, y: float,
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float,
) -> bool:
    """Closed containment of a point in triangle abc (any orientation)."""
    d1 = (bx - ax) * (y - ay) - (by - ay) * (x - ax)
    d2 = (cx - bx) * (y - by) - (cy - by) * (x - bx)
    d3 = (ax - cx) * (y - cy) - (ay - cy) * (x - cx)
    has_neg = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_pos = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_neg and has_pos)
