"""Polygon triangulation by ear clipping, with hole bridging.

The paper triangulates query polygons with clip2tri (constrained Delaunay)
before handing triangles to the GPU rasterizer.  Any triangulation produces
identical raster coverage under the top-left fill rule — Delaunay only
improves triangle aspect ratios, which matters for GPU warp efficiency, not
for results — so this reproduction uses the simpler and dependency-free
ear-clipping algorithm.  Holes are eliminated first by cutting a bridge edge
from each hole to the exterior ring (the classic approach popularized by
Eberly and by the earcut family of libraries).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TriangulationError
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import orientation, point_in_triangle

Triangle = np.ndarray  # (3, 2) float64


def _is_convex(ax, ay, bx, by, cx, cy) -> bool:
    """Whether vertex b is convex for a CCW ring (strictly left turn)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax) > 0


def _ear_contains_vertex(ring: np.ndarray, indices: list[int], i_prev: int,
                         i_curr: int, i_next: int) -> bool:
    ax, ay = ring[i_prev]
    bx, by = ring[i_curr]
    cx, cy = ring[i_next]
    for k in indices:
        if k in (i_prev, i_curr, i_next):
            continue
        px, py = ring[k]
        # Reflex vertices are the only candidates that can block an ear,
        # but testing all remaining vertices is simpler and still O(n).
        if point_in_triangle(px, py, ax, ay, bx, by, cx, cy):
            # A vertex exactly coincident with an ear corner does not block.
            if (px, py) in ((ax, ay), (bx, by), (cx, cy)):
                continue
            return True
    return False


def triangulate_ring(ring: np.ndarray) -> list[Triangle]:
    """Triangulate one simple CCW ring by ear clipping.

    Returns ``n - 2`` triangles whose union is the ring's interior.  Raises
    :class:`TriangulationError` if no ear can be found, which indicates a
    self-intersecting or degenerate input ring.
    """
    ring = np.asarray(ring, dtype=np.float64)
    if orientation(ring) < 0:
        ring = ring[::-1].copy()
    n = len(ring)
    if n < 3:
        raise TriangulationError("ring has fewer than 3 vertices")
    if n == 3:
        return [ring.copy()]

    indices = list(range(n))
    triangles: list[Triangle] = []
    guard = 0
    # Each successful clip removes one vertex; the guard bounds the number
    # of failed sweeps so invalid input fails fast instead of spinning.
    max_guard = 2 * n * n
    while len(indices) > 3:
        m = len(indices)
        clipped = False
        for pos in range(m):
            i_prev = indices[pos - 1]
            i_curr = indices[pos]
            i_next = indices[(pos + 1) % m]
            ax, ay = ring[i_prev]
            bx, by = ring[i_curr]
            cx, cy = ring[i_next]
            if not _is_convex(ax, ay, bx, by, cx, cy):
                continue
            if _ear_contains_vertex(ring, indices, i_prev, i_curr, i_next):
                continue
            triangles.append(
                np.array([[ax, ay], [bx, by], [cx, cy]], dtype=np.float64)
            )
            indices.pop(pos)
            clipped = True
            break
        if not clipped:
            # Tolerate collinear runs: drop a vertex with zero turn.
            dropped = False
            for pos in range(m):
                i_prev = indices[pos - 1]
                i_curr = indices[pos]
                i_next = indices[(pos + 1) % m]
                ax, ay = ring[i_prev]
                bx, by = ring[i_curr]
                cx, cy = ring[i_next]
                turn = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
                if turn == 0:
                    indices.pop(pos)
                    dropped = True
                    break
            if not dropped:
                raise TriangulationError(
                    "no ear found: ring is likely self-intersecting"
                )
        guard += 1
        if guard > max_guard:
            raise TriangulationError("ear clipping did not terminate")
    i, j, k = indices
    triangles.append(np.array([ring[i], ring[j], ring[k]], dtype=np.float64))
    # Drop degenerate slivers produced by collinear input runs.
    return [t for t in triangles if abs(orientation(t)) > 0.0]


def _bridge_hole(outer: np.ndarray, hole: np.ndarray) -> np.ndarray:
    """Merge a CW hole into a CCW outer ring via a bridge edge.

    Uses the standard rightmost-hole-vertex / visible-outer-vertex
    construction: find the hole vertex M with maximum x, shoot a ray towards
    +x to find the outer edge it first hits, then connect M to a visible
    reflex-free vertex of that edge's triangle.  The result is a single
    (degenerate but ear-clippable) CCW ring.
    """
    # Hole vertex with maximum x (ties broken by max y for determinism).
    hx = hole[:, 0]
    m_idx = int(np.lexsort((hole[:, 1], hx))[-1])
    mx, my = hole[m_idx]

    n = len(outer)
    best_t = np.inf
    best_edge = -1
    best_point: tuple[float, float] | None = None
    for i in range(n):
        ax, ay = outer[i]
        bx, by = outer[(i + 1) % n]
        # Edge must span the horizontal ray y = my going right from M.
        if (ay <= my < by) or (by <= my < ay):
            t = (my - ay) / (by - ay)
            x_hit = ax + t * (bx - ax)
            if x_hit >= mx and x_hit < best_t:
                best_t = x_hit
                best_edge = i
                best_point = (x_hit, my)
    if best_edge < 0 or best_point is None:
        raise TriangulationError("hole is not inside the outer ring")

    # The visible vertex is the endpoint of the hit edge with larger x,
    # unless some reflex outer vertex lies inside triangle (M, hit, P) —
    # then the closest such reflex vertex (by angle) becomes the bridge.
    ax, ay = outer[best_edge]
    bx, by = outer[(best_edge + 1) % n]
    p_idx = best_edge if ax > bx else (best_edge + 1) % n
    px, py = outer[p_idx]

    candidates = []
    for k in range(n):
        if k == p_idx:
            continue
        vx, vy = outer[k]
        if vx < mx:
            continue
        if point_in_triangle(vx, vy, mx, my, best_point[0], best_point[1], px, py):
            candidates.append(k)
    if candidates:
        # Pick the candidate minimizing the angle to the +x axis from M
        # (ties by distance), which guarantees visibility.
        def key(k: int) -> tuple[float, float]:
            vx, vy = outer[k]
            dx, dy = vx - mx, vy - my
            dist = np.hypot(dx, dy)
            return (abs(dy) / (dist + 1e-300), dist)

        p_idx = min(candidates, key=key)

    # Stitch: outer[..p_idx], hole[m_idx..] + hole[..m_idx], back to outer.
    hole_cycle = np.concatenate([hole[m_idx:], hole[:m_idx + 1]], axis=0)
    merged = np.concatenate(
        [
            outer[: p_idx + 1],
            hole_cycle,
            outer[p_idx:],
        ],
        axis=0,
    )
    return merged


def triangulate_polygon(polygon: Polygon) -> list[Triangle]:
    """Triangulate a polygon (holes included) into CCW triangles.

    The triangle list covers exactly the polygon interior; the sum of
    triangle areas equals ``polygon.area`` (property-tested).
    """
    ring = polygon.exterior
    # Holes must be merged right-to-left so earlier bridges do not cross
    # later holes: process holes by descending max-x.
    holes = sorted(polygon.holes, key=lambda h: -float(np.max(h[:, 0])))
    for hole in holes:
        ring = _bridge_hole(ring, hole)
    triangles = triangulate_ring(ring)
    # Normalize output to CCW so downstream edge functions can assume it.
    out = []
    for tri in triangles:
        if orientation(tri) < 0:
            tri = tri[::-1].copy()
        out.append(tri)
    return out


def triangulate_set(polygons: Sequence[Polygon]) -> tuple[np.ndarray, np.ndarray]:
    """Triangulate many polygons into flat arrays for the draw pass.

    Returns ``(triangles, ids)`` where ``triangles`` is (t, 3, 2) float64 and
    ``ids[t]`` is the polygon id owning triangle t — the "same key as the
    polygon" assignment of the paper's Step II.
    """
    tri_list: list[Triangle] = []
    id_list: list[int] = []
    for pid, poly in enumerate(polygons):
        tris = triangulate_polygon(poly)
        tri_list.extend(tris)
        id_list.extend([pid] * len(tris))
    if not tri_list:
        return (
            np.zeros((0, 3, 2), dtype=np.float64),
            np.zeros((0,), dtype=np.int64),
        )
    return np.stack(tri_list), np.asarray(id_list, dtype=np.int64)
