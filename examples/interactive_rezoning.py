#!/usr/bin/env python3
"""Interactive urban planning (the paper's second motivating application).

Policy makers rezone the city and place resources, inspecting aggregate
coverage after every change:

1. start from a zoning partition (Voronoi-merge regions);
2. iteratively "redraw" zone boundaries — every iteration changes the
   polygon set, so nothing can be precomputed, exactly the dynamic
   setting that defeats data-cube approaches;
3. place service facilities and compute their coverage via a restricted
   Voronoi diagram, aggregating taxi demand per facility;
4. flip back and forth between competing proposals (the undo/redo loop)
   with a :class:`QuerySession`, so revisiting a zoning — or running a
   different aggregate over it — reuses its triangulations, grid index,
   boundary masks, and coverage instead of rebuilding them;
5. save the day's prepared state to an :class:`ArtifactStore`, "restart"
   the planning tool, and answer the first query of the next session
   disk-warm — no re-triangulation, bit-identical numbers.

Run:  python examples/interactive_rezoning.py
"""

import tempfile
import time

import numpy as np

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    BoundedRasterJoin,
    Count,
    QuerySession,
    Sum,
)
from repro.data import generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.geometry.bbox import BBox


def rezoning_session(taxi, rounds: int = 4) -> None:
    """Each round = the planner commits a new zoning proposal."""
    print("-- Rezoning session (fresh polygons every round) --")
    engine = BoundedRasterJoin(epsilon=25.0)
    for round_id in range(rounds):
        zones = generate_voronoi_regions(
            18, NYC_REGION_EXTENT, seed=100 + round_id
        )
        start = time.perf_counter()
        demand = engine.execute(taxi, zones, aggregate=Sum("fare"))
        elapsed = time.perf_counter() - start
        values = demand.values
        top = int(values.argmax())
        spread = values.max() / max(values[values > 0].min(), 1.0)
        print(
            f"  proposal {round_id + 1}: total fares ${values.sum():,.0f}, "
            f"hottest zone #{top} (${values[top]:,.0f}), "
            f"max/min spread {spread:.1f}x  [{elapsed:.2f}s incl. "
            f"triangulation]"
        )


def facility_coverage(taxi, n_facilities: int = 12) -> None:
    """Restricted Voronoi coverage: each facility serves its nearest-
    neighbor cell, clipped to the city extent (the paper computes coverage
    'using a restricted Voronoi diagram to associate each resource with a
    polygonal region')."""
    print("\n-- Facility placement coverage --")
    rng = np.random.default_rng(3)
    extent = NYC_REGION_EXTENT

    engine = BoundedRasterJoin(epsilon=25.0)
    for attempt in ("random", "demand-aware"):
        if attempt == "random":
            fx = rng.uniform(extent.xmin, extent.xmax, n_facilities)
            fy = rng.uniform(extent.ymin, extent.ymax, n_facilities)
        else:
            # Place facilities at random *pickup* locations: cheap
            # demand-proportional sampling.
            idx = rng.integers(0, len(taxi), n_facilities)
            fx = taxi.xs[idx]
            fy = taxi.ys[idx]
        cells = _voronoi_cells(fx, fy, extent)
        coverage = engine.execute(taxi, cells)
        values = coverage.values
        balance = values.std() / values.mean()
        print(
            f"  {attempt:<13}: demand per facility "
            f"min={int(values.min())}, median={int(np.median(values))}, "
            f"max={int(values.max())}  (imbalance cv={balance:.2f})"
        )
    print("  => demand-aware placement balances coverage far better.")


def _voronoi_cells(fx, fy, extent: BBox):
    """Restricted Voronoi cells of the facility sites."""
    from repro.data.regions import _clipped_voronoi_cells
    from repro.geometry.polygon import Polygon, PolygonSet

    sites = np.column_stack([fx, fy])
    cells = _clipped_voronoi_cells(sites, extent)
    return PolygonSet([Polygon(c) for c in cells])


def proposal_comparison(taxi) -> None:
    """The undo/redo loop: the planner keeps flipping between proposal A
    and proposal B, and also asks different questions about the same
    zoning.  With a QuerySession every revisit is a prepared-state hit —
    only the point rendering runs."""
    print("\n-- Proposal comparison with a QuerySession --")
    session = QuerySession()
    engine = AccurateRasterJoin(resolution=1024, session=session)
    proposals = {
        "A": generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=100),
        "B": generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=101),
    }
    schedule = [
        ("A", Sum("fare")), ("B", Sum("fare")),   # first look: cold
        ("A", Sum("fare")), ("B", Sum("fare")),   # revisit: warm
        ("A", Count()), ("B", Count()),           # new question, same zoning
    ]
    for name, aggregate in schedule:
        start = time.perf_counter()
        result = engine.execute(taxi, proposals[name], aggregate=aggregate)
        elapsed = time.perf_counter() - start
        state = "warm" if result.stats.prepared_hits else "cold"
        print(
            f"  proposal {name} / {aggregate.name:<5}: "
            f"{result.values.sum():>14,.0f} total  "
            f"[{elapsed:.3f}s, prepared state {state}]"
        )
    print(f"  => {session!r}")


def warm_restart(taxi) -> None:
    """End of day: the planner closes the tool; tomorrow the first query
    over yesterday's zoning should not pay the cold build again.  An
    ArtifactStore persists prepared state write-through, so a *new
    process* (simulated here by a brand-new session over the same
    directory) starts disk-warm."""
    print("\n-- Save / restart / warm query with an ArtifactStore --")
    zoning = generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=100)
    with tempfile.TemporaryDirectory(prefix="rezoning-store-") as store_dir:
        # Today's session: the cold build is persisted as a side effect.
        today = QuerySession(store=ArtifactStore(store_dir))
        engine = AccurateRasterJoin(resolution=1024, session=today)
        start = time.perf_counter()
        before = engine.execute(taxi, zoning, aggregate=Sum("fare"))
        cold_s = time.perf_counter() - start
        print(f"  today    : cold build + write-through   [{cold_s:.3f}s, "
              f"{len(today.store)} artifact(s) on disk]")

        # "Restart": a fresh session + store handle, empty memory tier.
        tomorrow = QuerySession(store=ArtifactStore(store_dir))
        engine = AccurateRasterJoin(resolution=1024, session=tomorrow)
        start = time.perf_counter()
        after = engine.execute(taxi, zoning, aggregate=Sum("fare"))
        warm_s = time.perf_counter() - start
        state = "disk-warm" if after.stats.prepared_store_hits else "cold?!"
        identical = np.array_equal(before.values, after.values)
        print(f"  tomorrow : first query {state}          [{warm_s:.3f}s, "
              f"{cold_s / warm_s:.1f}x faster, bit-identical={identical}]")
        print(f"  => {tomorrow!r}")


def main() -> None:
    print("Generating 500k taxi pickups...")
    taxi = generate_taxi(500_000, seed=9)
    rezoning_session(taxi)
    facility_coverage(taxi)
    proposal_comparison(taxi)
    warm_restart(taxi)


if __name__ == "__main__":
    main()
