#!/usr/bin/env python3
"""Interactive urban planning (the paper's second motivating application).

Policy makers rezone the city and place resources, inspecting aggregate
coverage after every change:

1. start from a zoning partition (Voronoi-merge regions);
2. iteratively "redraw" one zone boundary — **move one vertex, re-query**
   — and re-aggregate incrementally: with a :class:`QuerySession` the
   edited set delta-derives from the warm artifact, so only the edited
   polygon re-triangulates and re-rasterizes (the per-iteration rebuild
   count is printed; see ``docs/incremental_edits.md``);
3. place service facilities and compute their coverage via a restricted
   Voronoi diagram, aggregating taxi demand per facility;
4. flip back and forth between competing proposals (the undo/redo loop)
   with a :class:`QuerySession`, so revisiting a zoning — or running a
   different aggregate over it — reuses its triangulations, grid index,
   boundary masks, and coverage instead of rebuilding them;
5. save the day's prepared state to an :class:`ArtifactStore`, "restart"
   the planning tool, and answer the first query of the next session
   disk-warm — no re-triangulation, bit-identical numbers; single-vertex
   edits persist as small journal patches, not whole-artifact rewrites.

Run:  python examples/interactive_rezoning.py
"""

import tempfile
import time

import numpy as np

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    BoundedRasterJoin,
    Count,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.data import generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.geometry.bbox import BBox


def move_one_vertex(zones: PolygonSet, stroke: int) -> tuple[PolygonSet, int]:
    """One rezoning stroke: nudge one vertex of one interior zone.

    Interior zones keep the city extent (the *frame*) unchanged, which
    is what lets the session reuse every other zone's prepared state.
    """
    box = zones.bbox
    polys = list(zones)
    interior = [
        i for i, p in enumerate(polys)
        if p.bbox.xmin > box.xmin and p.bbox.xmax < box.xmax
        and p.bbox.ymin > box.ymin and p.bbox.ymax < box.ymax
    ]
    if not interior:
        raise ValueError(
            "zoning has no interior zone: every polygon touches the "
            "extent, so a vertex edit would change the frame and "
            "cold-rebuild instead of re-aggregating incrementally"
        )
    pid = interior[stroke % len(interior)]
    ring = polys[pid].exterior.copy()
    center = ring.mean(axis=0)
    vid = stroke % len(ring)
    ring[vid] = ring[vid] + (center - ring[vid]) * 0.3
    polys[pid] = Polygon(ring)
    return PolygonSet(polys, names=zones.names), pid


def rezoning_session(taxi, strokes: int = 4) -> None:
    """The incremental edit loop: move one vertex, re-query, repeat."""
    print("-- Rezoning session (one-vertex strokes, incremental) --")
    session = QuerySession()
    engine = BoundedRasterJoin(epsilon=25.0, session=session)
    zones = generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=100)
    start = time.perf_counter()
    demand = engine.execute(taxi, zones, aggregate=Sum("fare"))
    elapsed = time.perf_counter() - start
    print(
        f"  initial zoning : total fares ${demand.values.sum():,.0f}  "
        f"[{elapsed:.3f}s, cold build of {len(zones)} zones]"
    )
    for stroke in range(strokes):
        zones, pid = move_one_vertex(zones, stroke)
        start = time.perf_counter()
        demand = engine.execute(taxi, zones, aggregate=Sum("fare"))
        elapsed = time.perf_counter() - start
        rebuilt = demand.stats.extra.get("polygons_rebuilt", len(zones))
        values = demand.values
        print(
            f"  stroke {stroke + 1} (zone #{pid}): total fares "
            f"${values.sum():,.0f}, hottest zone #{int(values.argmax())}  "
            f"[{elapsed:.3f}s, prepared={demand.stats.extra['prepared']}, "
            f"rebuilt {rebuilt}/{len(zones)} zones]"
        )
    print("\n  last stroke, in full (stats.summary()):")
    for line in demand.stats.summary().splitlines():
        print(f"    {line}")
    print(f"  => {session!r}")


def facility_coverage(taxi, n_facilities: int = 12) -> None:
    """Restricted Voronoi coverage: each facility serves its nearest-
    neighbor cell, clipped to the city extent (the paper computes coverage
    'using a restricted Voronoi diagram to associate each resource with a
    polygonal region')."""
    print("\n-- Facility placement coverage --")
    rng = np.random.default_rng(3)
    extent = NYC_REGION_EXTENT

    engine = BoundedRasterJoin(epsilon=25.0)
    for attempt in ("random", "demand-aware"):
        if attempt == "random":
            fx = rng.uniform(extent.xmin, extent.xmax, n_facilities)
            fy = rng.uniform(extent.ymin, extent.ymax, n_facilities)
        else:
            # Place facilities at random *pickup* locations: cheap
            # demand-proportional sampling.
            idx = rng.integers(0, len(taxi), n_facilities)
            fx = taxi.xs[idx]
            fy = taxi.ys[idx]
        cells = _voronoi_cells(fx, fy, extent)
        coverage = engine.execute(taxi, cells)
        values = coverage.values
        balance = values.std() / values.mean()
        print(
            f"  {attempt:<13}: demand per facility "
            f"min={int(values.min())}, median={int(np.median(values))}, "
            f"max={int(values.max())}  (imbalance cv={balance:.2f})"
        )
    print("  => demand-aware placement balances coverage far better.")


def _voronoi_cells(fx, fy, extent: BBox):
    """Restricted Voronoi cells of the facility sites."""
    from repro.data.regions import _clipped_voronoi_cells
    from repro.geometry.polygon import Polygon, PolygonSet

    sites = np.column_stack([fx, fy])
    cells = _clipped_voronoi_cells(sites, extent)
    return PolygonSet([Polygon(c) for c in cells])


def proposal_comparison(taxi) -> None:
    """The undo/redo loop: the planner keeps flipping between proposal A
    and proposal B, and also asks different questions about the same
    zoning.  With a QuerySession every revisit is a prepared-state hit —
    only the point rendering runs."""
    print("\n-- Proposal comparison with a QuerySession --")
    session = QuerySession()
    engine = AccurateRasterJoin(resolution=1024, session=session)
    proposals = {
        "A": generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=100),
        "B": generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=101),
    }
    schedule = [
        ("A", Sum("fare")), ("B", Sum("fare")),   # first look: cold
        ("A", Sum("fare")), ("B", Sum("fare")),   # revisit: warm
        ("A", Count()), ("B", Count()),           # new question, same zoning
    ]
    for name, aggregate in schedule:
        start = time.perf_counter()
        result = engine.execute(taxi, proposals[name], aggregate=aggregate)
        elapsed = time.perf_counter() - start
        state = "warm" if result.stats.prepared_hits else "cold"
        print(
            f"  proposal {name} / {aggregate.name:<5}: "
            f"{result.values.sum():>14,.0f} total  "
            f"[{elapsed:.3f}s, prepared state {state}]"
        )
    print(f"  => {session!r}")


def warm_restart(taxi) -> None:
    """End of day: the planner closes the tool; tomorrow the first query
    over yesterday's zoning should not pay the cold build again.  An
    ArtifactStore persists prepared state write-through, so a *new
    process* (simulated here by a brand-new session over the same
    directory) starts disk-warm."""
    print("\n-- Save / restart / warm query with an ArtifactStore --")
    zoning = generate_voronoi_regions(18, NYC_REGION_EXTENT, seed=100)
    with tempfile.TemporaryDirectory(prefix="rezoning-store-") as store_dir:
        # Today's session: the cold build is persisted as a side effect.
        today = QuerySession(store=ArtifactStore(store_dir))
        engine = AccurateRasterJoin(resolution=1024, session=today)
        start = time.perf_counter()
        before = engine.execute(taxi, zoning, aggregate=Sum("fare"))
        cold_s = time.perf_counter() - start
        print(f"  today    : cold build + write-through   [{cold_s:.3f}s, "
              f"{len(today.store)} artifact(s) on disk]")

        # "Restart": a fresh session + store handle, empty memory tier.
        tomorrow = QuerySession(store=ArtifactStore(store_dir))
        engine = AccurateRasterJoin(resolution=1024, session=tomorrow)
        start = time.perf_counter()
        after = engine.execute(taxi, zoning, aggregate=Sum("fare"))
        warm_s = time.perf_counter() - start
        state = "disk-warm" if after.stats.prepared_store_hits else "cold?!"
        identical = np.array_equal(before.values, after.values)
        print(f"  tomorrow : first query {state}          [{warm_s:.3f}s, "
              f"{cold_s / warm_s:.1f}x faster, bit-identical={identical}]")

        # One morning stroke: the edit persists as a journal patch
        # appended to the zoning's lineage, not a whole-pair rewrite.
        edited, pid = move_one_vertex(zoning, 0)
        start = time.perf_counter()
        stroke = engine.execute(taxi, edited, aggregate=Sum("fare"))
        edit_s = time.perf_counter() - start
        print(
            f"  stroke   : zone #{pid} edited            [{edit_s:.3f}s, "
            f"prepared={stroke.stats.extra['prepared']}, rebuilt "
            f"{stroke.stats.extra.get('polygons_rebuilt', '?')}/"
            f"{len(edited)} zones, {tomorrow.store.patch_saves} journal "
            f"patch(es) on disk]"
        )
        print(f"  => {tomorrow!r}")


def main() -> None:
    print("Generating 500k taxi pickups...")
    taxi = generate_taxi(500_000, seed=9)
    rezoning_session(taxi)
    facility_coverage(taxi)
    proposal_comparison(taxi)
    warm_restart(taxi)


if __name__ == "__main__":
    main()
