#!/usr/bin/env python3
"""The SQL frontend: the paper's query template, end to end.

Registers the synthetic taxi table and two polygon tables (neighborhoods
and coarser districts), then runs the paper's query shapes — counts,
filtered averages, and ε-bounded approximate queries via the WITHIN
extension — through the parser/planner/engine stack.

Run:  python examples/sql_interface.py
"""

from repro import GPUDevice
from repro.data import generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.sql import QueryPlanner

QUERIES = [
    # The paper's canonical query: pickups per neighborhood.
    """SELECT COUNT(*) FROM taxi, hoods
       WHERE taxi.loc INSIDE hoods.geometry
       GROUP BY hoods.id""",
    # Filtered aggregation: average evening fare.
    """SELECT AVG(taxi.fare) FROM taxi, hoods
       WHERE taxi.loc INSIDE hoods.geometry
         AND hour >= 17 AND hour <= 19
       GROUP BY hoods.id""",
    # Approximate variant: explicit 20 m Hausdorff bound selects the
    # bounded raster join.
    """SELECT COUNT(*) FROM taxi, hoods
       WHERE taxi.loc INSIDE hoods.geometry WITHIN 20
       GROUP BY hoods.id""",
    # Different polygon table, different aggregate.
    """SELECT SUM(taxi.tip) FROM taxi, districts
       WHERE taxi.loc INSIDE districts.geometry
         AND passengers >= 2
       GROUP BY districts.id""",
    # Order statistics (extension aggregates).
    """SELECT MAX(taxi.distance) FROM taxi, districts
       WHERE taxi.loc INSIDE districts.geometry
       GROUP BY districts.id""",
]


def main() -> None:
    print("Building catalog: 500k taxi rows, 60 neighborhoods, "
          "12 districts...")
    planner = QueryPlanner(device=GPUDevice())
    planner.register_points("taxi", generate_taxi(500_000, seed=13))
    planner.register_regions(
        "hoods", generate_voronoi_regions(60, NYC_REGION_EXTENT, seed=13)
    )
    planner.register_regions(
        "districts", generate_voronoi_regions(12, NYC_REGION_EXTENT, seed=14)
    )

    for sql in QUERIES:
        flat = " ".join(sql.split())
        print(f"\nsql> {flat}")
        engine, *_ = planner.plan(sql)
        result = planner.execute(sql)
        values = result.values
        print(
            f"  engine={result.stats.engine}  "
            f"time={result.stats.query_s * 1000:.0f} ms  "
            f"groups={len(values)}"
        )
        preview = ", ".join(f"{v:.1f}" for v in values[:6])
        print(f"  values[:6] = [{preview}, ...]")

    # Error handling: the planner validates before running anything.
    print("\nsql> SELECT COUNT(*) FROM taxi, nowhere WHERE "
          "taxi.loc INSIDE nowhere.geometry GROUP BY nowhere.id")
    try:
        planner.execute(
            "SELECT COUNT(*) FROM taxi, nowhere "
            "WHERE taxi.loc INSIDE nowhere.geometry GROUP BY nowhere.id"
        )
    except Exception as exc:
        print(f"  rejected: {exc}")


if __name__ == "__main__":
    main()
