#!/usr/bin/env python3
"""Urbane-style urban data exploration (the paper's Figure 1/6 scenario).

Builds taxi-pickup heat maps over NYC-like neighborhoods:

1. aggregate 1M synthetic taxi pickups per neighborhood, accurately and
   with the bounded raster join at ε = 20 m;
2. render both choropleths to PPM images;
3. verify with just-noticeable-difference analysis that the two maps are
   perceptually identical (the paper's §7.6 argument);
4. re-run the query with interactively-changed time filters, as the
   Urbane UI would.

Run:  python examples/urban_heatmap.py [output_dir]
"""

import sys
from pathlib import Path

from repro import AccurateRasterJoin, BoundedRasterJoin, Filter
from repro.data import generate_neighborhoods, generate_taxi
from repro.viz import jnd_report, render_choropleth, write_ppm


def main(output_dir: str = "heatmaps") -> None:
    out = Path(output_dir)
    out.mkdir(exist_ok=True)

    print("Generating 1M taxi-like pickups and 260 neighborhoods...")
    taxi = generate_taxi(1_000_000, seed=42)
    hoods = generate_neighborhoods(seed=42)

    print("Aggregating (accurate)...")
    accurate = AccurateRasterJoin(resolution=1024).execute(taxi, hoods)
    print(f"  accurate: {accurate.stats.query_s:.2f}s, "
          f"{accurate.stats.pip_tests} PIP tests "
          f"({accurate.stats.boundary_points} boundary points)")

    print("Aggregating (bounded, ε = 20 m)...")
    bounded = BoundedRasterJoin(epsilon=20.0).execute(taxi, hoods)
    print(f"  bounded:  {bounded.stats.query_s:.2f}s, zero PIP tests, "
          f"canvas {bounded.stats.extra['canvas']}")

    # Render both results through the same choropleth path.
    for label, result in (("accurate", accurate), ("approximate", bounded)):
        path = write_ppm(
            out / f"taxi_{label}.ppm",
            render_choropleth(hoods, result.values, resolution=768),
        )
        print(f"  wrote {path}")

    report = jnd_report(bounded.values, accurate.values)
    print(f"\n{report}")
    if report.indistinguishable:
        print("=> A human cannot tell the two heat maps apart (Figure 6).")

    # Interactive exploration: the user drags the hour slider.
    print("\nInteractive time-of-day filtering (bounded join):")
    for label, lo, hi in (
        ("morning rush", 7, 9),
        ("midday", 11, 14),
        ("evening rush", 17, 19),
    ):
        filters = [Filter("hour", ">=", lo), Filter("hour", "<=", hi)]
        result = BoundedRasterJoin(epsilon=20.0).execute(
            taxi, hoods, filters=filters
        )
        busiest = int(result.values.argmax())
        print(
            f"  {label:<13} ({lo:02d}-{hi:02d}h): "
            f"{int(result.values.sum()):>7} pickups, busiest region "
            f"#{busiest} with {int(result.values[busiest])} "
            f"[{result.stats.query_s * 1000:.0f} ms]"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "heatmaps")
