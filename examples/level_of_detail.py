#!/usr/bin/env python3
"""Level-of-detail exploration (the paper's §4.2 LOD argument).

Visual analytics follows "overview first, zoom and filter, details on
demand".  With a fixed framebuffer resolution, zooming into a smaller
region makes each pixel cover less ground — the aggregation gets more
accurate *for free*, with no change in computation cost.  This example
quantifies that: the same 4k-pixel canvas is pointed at the whole city,
one quadrant, and one neighborhood-sized window, and the effective ε and
measured error both shrink proportionally.

Run:  python examples/level_of_detail.py
"""

import numpy as np

from repro import AccurateRasterJoin, BoundedRasterJoin, Polygon, PolygonSet
from repro.data import generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.geometry.bbox import BBox


def clip_regions(regions: PolygonSet, window: BBox) -> PolygonSet:
    """Regions visible in the current viewport (bbox overlap)."""
    visible = [p for p in regions if p.bbox.intersects(window)]
    return PolygonSet(visible)


def main() -> None:
    print("Generating 1M pickups and 260 regions...")
    taxi = generate_taxi(1_000_000, seed=4)
    regions = generate_voronoi_regions(260, NYC_REGION_EXTENT, seed=4)

    full = NYC_REGION_EXTENT
    zoom_levels = [
        ("city overview", full),
        ("quadrant", BBox(full.xmin, full.ymin,
                          full.xmin + full.width / 2,
                          full.ymin + full.height / 2)),
        ("district", BBox(full.xmin + 0.3 * full.width,
                          full.ymin + 0.3 * full.height,
                          full.xmin + 0.45 * full.width,
                          full.ymin + 0.45 * full.height)),
    ]

    resolution = 2048  # fixed, like a visualization canvas
    print(f"Fixed canvas: {resolution} px on the longer side\n")
    print(f"{'zoom level':<15} {'window km':>10} {'eff. ε m':>9} "
          f"{'median err %':>13} {'query s':>8}")

    for label, window in zoom_levels:
        visible = clip_regions(regions, window)
        # Keep only the points in view (the renderer's clip stage would).
        mask = window.contains_points(taxi.xs, taxi.ys)
        in_view = taxi.take(np.flatnonzero(mask))

        # Zooming = rendering the same resolution over a smaller window.
        sub_extent = PolygonSet(
            [Polygon([(window.xmin, window.ymin), (window.xmax, window.ymin),
                      (window.xmax, window.ymax), (window.xmin, window.ymax)])]
        )
        engine = BoundedRasterJoin(resolution=resolution)
        # Execute against the *visible* regions; canvas spans their bbox,
        # which shrinks with the zoom window.
        approx = engine.execute(in_view, visible)
        exact = AccurateRasterJoin(resolution=1024).execute(in_view, visible)

        nonzero = exact.values > 50
        if nonzero.any():
            rel = (
                np.abs(approx.values[nonzero] - exact.values[nonzero])
                / exact.values[nonzero]
            )
            median_err = 100.0 * float(np.median(rel))
        else:
            median_err = float("nan")
        eff_epsilon = approx.stats.extra["pixel_diagonal"]
        print(
            f"{label:<15} {window.width / 1000:>10.1f} {eff_epsilon:>9.2f} "
            f"{median_err:>13.4f} {approx.stats.query_s:>8.2f}"
        )
        del sub_extent  # viewport bookkeeping only

    print("\n=> Same canvas, same cost — but each zoom level divides the "
          "effective ε (and the error) by the zoom factor.")


if __name__ == "__main__":
    main()
