#!/usr/bin/env python3
"""Quickstart: spatial aggregation in a dozen lines.

Counts random points inside three polygons with all four engines and
shows that the exact engines agree while the bounded engine trades a
tiny, ε-bounded error for speed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    IndexJoin,
    MaterializingJoin,
    PointDataset,
    Polygon,
    PolygonSet,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A point table: locations plus one numeric attribute.
    n = 200_000
    points = PointDataset(
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        {"fare": rng.uniform(2.5, 40.0, n)},
    )

    # Three query regions: a convex quad, a concave pentagon, and a
    # rectangle with a hole.
    regions = PolygonSet(
        [
            Polygon([(10, 10), (40, 12), (35, 40), (15, 35)]),
            Polygon([(50, 50), (90, 55), (80, 95), (45, 80), (60, 65)]),
            Polygon(
                [(20, 60), (40, 60), (40, 90), (20, 90)],
                holes=[[(25, 65), (35, 65), (35, 85), (25, 85)]],
            ),
        ],
        names=["downtown", "harbor", "park-ring"],
    )

    print("SELECT COUNT(*) FROM points, regions")
    print("WHERE points.loc INSIDE regions.geometry GROUP BY regions.id\n")

    engines = [
        BoundedRasterJoin(epsilon=0.5),     # approximate, no PIP tests
        AccurateRasterJoin(resolution=512),  # exact, boundary-only PIP
        IndexJoin(mode="gpu"),               # baseline: PIP for every point
        MaterializingJoin(truncate_bits=None),
    ]
    for engine in engines:
        result = engine.execute(points, regions)
        counts = ", ".join(
            f"{name}={int(v)}" for name, v in zip(regions.names, result.values)
        )
        print(
            f"{engine.name:<20} {counts}   "
            f"({result.stats.query_s * 1000:.1f} ms, "
            f"{result.stats.pip_tests} PIP tests)"
        )

    # The bounded engine also reports guaranteed result ranges.
    bounded = BoundedRasterJoin(epsilon=2.0, compute_bounds=True)
    result = bounded.execute(points, regions)
    print("\nResult ranges at a coarse ε = 2.0 (loose bounds hold with "
          "100% confidence):")
    for name, value, lo, hi in zip(
        regions.names, result.values,
        result.intervals.loose_lo, result.intervals.loose_hi,
    ):
        print(f"  {name:<10} ≈ {int(value):>6}   ∈ [{int(lo)}, {int(hi)}]")


if __name__ == "__main__":
    main()
