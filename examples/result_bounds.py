#!/usr/bin/env python3
"""Result-range estimation (§5): guaranteed intervals for approximate
answers.

The bounded raster join can report, per polygon, a loose interval that
contains the exact answer with 100% confidence (all error lives in
boundary pixels) and a tighter expected interval assuming uniform point
placement inside each boundary pixel.  This example sweeps ε and shows how
the intervals tighten while always covering the exact count — and what the
interval machinery costs.

Run:  python examples/result_bounds.py
"""

import time

import numpy as np

from repro import AccurateRasterJoin, BoundedRasterJoin
from repro.data import generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT


def main() -> None:
    print("Generating 400k pickups and 40 regions...")
    taxi = generate_taxi(400_000, seed=23)
    regions = generate_voronoi_regions(40, NYC_REGION_EXTENT, seed=23)

    exact = AccurateRasterJoin(resolution=1024).execute(taxi, regions).values

    print(f"\n{'ε (m)':>8} {'median err %':>13} {'mean loose width':>17} "
          f"{'mean expected width':>20} {'covered':>8} {'bounds cost s':>14}")
    for epsilon in (320.0, 160.0, 80.0, 40.0, 20.0):
        engine = BoundedRasterJoin(epsilon=epsilon, compute_bounds=True)
        start = time.perf_counter()
        result = engine.execute(taxi, regions)
        _ = time.perf_counter() - start
        iv = result.intervals

        nonzero = exact > 0
        err = 100.0 * np.median(
            np.abs(result.values[nonzero] - exact[nonzero]) / exact[nonzero]
        )
        loose_w = float(np.mean(iv.loose_hi - iv.loose_lo))
        expected_w = float(np.mean(iv.expected_hi - iv.expected_lo))
        covered = f"{iv.contains(exact).mean():.0%}"
        bounds_s = result.stats.extra.get("bounds_s", 0.0)
        print(f"{epsilon:>8.0f} {err:>13.4f} {loose_w:>17.1f} "
              f"{expected_w:>20.1f} {covered:>8} {bounds_s:>14.2f}")

    # Drill into one region at the coarsest bound.
    engine = BoundedRasterJoin(epsilon=320.0, compute_bounds=True)
    result = engine.execute(taxi, regions)
    iv = result.intervals
    pid = int(np.argmax(iv.loose_hi - iv.loose_lo))
    print(f"\nWidest interval at ε=320 m — region #{pid}:")
    print(f"  exact count      : {int(exact[pid])}")
    print(f"  approximate      : {int(result.values[pid])}")
    print(f"  expected value   : {iv.expected_value[pid]:.0f}")
    print(f"  loose interval   : [{iv.loose_lo[pid]:.0f}, "
          f"{iv.loose_hi[pid]:.0f}]  (always contains exact)")
    print(f"  expected interval: [{iv.expected_lo[pid]:.0f}, "
          f"{iv.expected_hi[pid]:.0f}]")
    print("\n=> Even a very coarse bound yields actionable ranges; the "
          "expected value corrects most of the bias.")


if __name__ == "__main__":
    main()
